package attrserver

import (
	"container/list"
	"sync"
	"time"
)

// resultCache is a sharded in-memory cache for computed attribution
// results. Each shard owns an independent RW lock, an LRU list and a slice
// of the total byte budget, so concurrent queries for different keys never
// contend on one mutex. Entries expire by TTL (checked lazily on lookup)
// and are evicted least-recently-used when a shard exceeds its budget.
type resultCache struct {
	shards []*cacheShard
	mask   uint64
	now    func() time.Time
	inst   *Instruments
}

type cacheShard struct {
	mu     sync.RWMutex
	items  map[string]*list.Element
	lru    *list.List // front = most recently used
	bytes  int64
	budget int64
}

type cacheEntry struct {
	key     string
	val     any
	size    int64
	expires time.Time
}

// newResultCache builds a cache with totalBytes spread evenly across
// shards (rounded up to a power of two so key routing is a mask).
func newResultCache(totalBytes int64, shards int, now func() time.Time, inst *Instruments) *resultCache {
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := totalBytes / int64(n)
	if perShard < 1 {
		perShard = 1
	}
	c := &resultCache{
		shards: make([]*cacheShard, n),
		mask:   uint64(n - 1),
		now:    now,
		inst:   inst,
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			items:  map[string]*list.Element{},
			lru:    list.New(),
			budget: perShard,
		}
	}
	return c
}

// shardOf routes a key to its shard by FNV-1a.
func (c *resultCache) shardOf(key string) *cacheShard {
	const offset, prime = uint64(14695981039346656037), uint64(1099511628211)
	h := offset
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return c.shards[h&c.mask]
}

// get returns the cached value for key, counting a hit or a miss. An
// expired entry is removed (counted as an eviction) and reported as a miss.
func (c *resultCache) get(key string) (any, bool) {
	sh := c.shardOf(key)
	now := c.now()

	sh.mu.RLock()
	el, ok := sh.items[key]
	var ent *cacheEntry
	if ok {
		ent = el.Value.(*cacheEntry)
		ok = ent.expires.After(now)
	}
	sh.mu.RUnlock()

	if ent == nil {
		c.inst.CacheMisses.Inc()
		return nil, false
	}
	// Promotion and expiry both mutate the shard; re-check under the write
	// lock since the entry may have been evicted in between.
	sh.mu.Lock()
	el, present := sh.items[key]
	if present && el.Value.(*cacheEntry) == ent {
		if ok {
			sh.lru.MoveToFront(el)
		} else {
			sh.remove(el)
			c.inst.CacheEvictions.Inc()
		}
	}
	sh.mu.Unlock()

	if !ok {
		c.inst.CacheMisses.Inc()
		return nil, false
	}
	c.inst.CacheHits.Inc()
	return ent.val, true
}

// put inserts (or replaces) a value with the given footprint and TTL, then
// evicts from the LRU tail until the shard fits its budget. Entries larger
// than a whole shard, and non-positive TTLs, are not cached.
func (c *resultCache) put(key string, val any, size int64, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	sh := c.shardOf(key)
	if size > sh.budget {
		return
	}
	ent := &cacheEntry{key: key, val: val, size: size, expires: c.now().Add(ttl)}

	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.remove(el)
	}
	sh.items[key] = sh.lru.PushFront(ent)
	sh.bytes += size
	evicted := 0
	for sh.bytes > sh.budget {
		back := sh.lru.Back()
		if back == nil || back.Value.(*cacheEntry) == ent {
			break
		}
		sh.remove(back)
		evicted++
	}
	sh.mu.Unlock()

	c.inst.CacheEvictions.Add(float64(evicted))
}

// remove drops an element from the shard (the caller holds the write lock).
func (sh *cacheShard) remove(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	delete(sh.items, ent.key)
	sh.lru.Remove(el)
	sh.bytes -= ent.size
}

// stats reports live entry and byte counts across all shards.
func (c *resultCache) stats() (entries int, bytes int64) {
	for _, sh := range c.shards {
		sh.mu.RLock()
		entries += len(sh.items)
		bytes += sh.bytes
		sh.mu.RUnlock()
	}
	return entries, bytes
}
