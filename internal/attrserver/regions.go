package attrserver

import (
	"fmt"
	"net/http"
	"strconv"

	"fairco2/internal/optimize"
)

// defaultWhatifMoves caps the placement front when the query does not set
// max_moves.
const defaultWhatifMoves = 16

// maxWhatifMoves bounds max_moves so a hostile query cannot request an
// absurd plan (the front can never exceed the tenant count anyway).
const maxWhatifMoves = 4096

// handleRegions serves GET /v1/regions: the discovered multi-region
// scenario — providers, fleets, grid calibration and budgets — in
// configuration order, so equal seeds yield byte-identical responses.
func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	sc := s.cfg.Scenario
	out := regionsResponse{Seed: sc.Seed, WindowSeconds: float64(sc.Window)}
	for i := range sc.Regions {
		reg := &sc.Regions[i]
		embodied, err := reg.EmbodiedPerCoreSecond()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		rj := regionJSON{
			Provider:              reg.Provider,
			Region:                reg.Name,
			Description:           reg.Profile.Description,
			PUE:                   reg.PUE,
			MeanIntensity:         reg.Profile.Mean,
			LifetimeYears:         reg.LifetimeYears,
			LogicalCores:          reg.FleetLogicalCores(),
			EmbodiedRateGPerSec:   reg.FleetEmbodiedRate(),
			EmbodiedPerCoreSecond: embodied,
			WattsPerCore:          reg.WattsPerCore(),
			BudgetGrams:           float64(reg.Budget),
			Tenants:               len(reg.Tenants),
		}
		for _, mc := range reg.Fleet {
			rj.Fleet = append(rj.Fleet, fleetJSON{Class: mc.Name, Count: mc.Count, Cores: mc.Server.Cores})
		}
		out.Regions = append(out.Regions, rj)
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePlacementWhatif serves GET /v1/placement/whatif?max_moves=N: the
// Pareto front of migration count versus total fleet carbon over the
// configured scenario. The sweep is deterministic, so equal seeds yield
// byte-identical fronts.
func (s *Server) handlePlacementWhatif(w http.ResponseWriter, r *http.Request) {
	maxMoves := defaultWhatifMoves
	if raw := r.URL.Query().Get("max_moves"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("attrserver: invalid max_moves %q", raw))
			return
		}
		if n > maxWhatifMoves {
			n = maxWhatifMoves
		}
		maxMoves = n
	}
	front, err := s.cfg.Scenario.Placement(maxMoves)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, renderPlacement(front))
}

func renderPlacement(front []optimize.PlacementPoint) placementResponse {
	out := placementResponse{BaselineGrams: front[0].TotalGrams}
	for _, p := range front {
		pj := placementPointJSON{Moves: p.Moves, TotalGrams: p.TotalGrams}
		pj.SavingGrams = out.BaselineGrams - p.TotalGrams
		for _, m := range p.Plan {
			pj.Plan = append(pj.Plan, moveJSON{
				Tenant: m.Tenant, From: m.From, To: m.To, SavingGrams: m.SavingGrams,
			})
		}
		out.Front = append(out.Front, pj)
	}
	return out
}

// Region endpoint response shapes; field names are wire contract.

type regionsResponse struct {
	Seed          int64        `json:"seed"`
	WindowSeconds float64      `json:"window_seconds"`
	Regions       []regionJSON `json:"regions"`
}

type regionJSON struct {
	Provider              string      `json:"provider"`
	Region                string      `json:"region"`
	Description           string      `json:"description"`
	PUE                   float64     `json:"pue"`
	MeanIntensity         float64     `json:"mean_intensity_g_per_kwh"`
	LifetimeYears         int         `json:"lifetime_years"`
	LogicalCores          int         `json:"logical_cores"`
	EmbodiedRateGPerSec   float64     `json:"embodied_rate_g_per_second"`
	EmbodiedPerCoreSecond float64     `json:"embodied_g_per_core_second"`
	WattsPerCore          float64     `json:"watts_per_core"`
	BudgetGrams           float64     `json:"budget_gco2e"`
	Tenants               int         `json:"tenants"`
	Fleet                 []fleetJSON `json:"fleet"`
}

type fleetJSON struct {
	Class string `json:"class"`
	Count int    `json:"count"`
	Cores int    `json:"cores"`
}

type placementResponse struct {
	BaselineGrams float64              `json:"baseline_gco2e"`
	Front         []placementPointJSON `json:"front"`
}

type placementPointJSON struct {
	Moves       int        `json:"moves"`
	TotalGrams  float64    `json:"total_gco2e"`
	SavingGrams float64    `json:"saving_gco2e"`
	Plan        []moveJSON `json:"plan,omitempty"`
}

type moveJSON struct {
	Tenant      string  `json:"tenant"`
	From        string  `json:"from"`
	To          string  `json:"to"`
	SavingGrams float64 `json:"saving_gco2e"`
}
