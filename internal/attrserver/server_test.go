package attrserver

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fairco2/internal/attribution"
	"fairco2/internal/livesignal"
	"fairco2/internal/metrics"
	"fairco2/internal/schedule"
	"fairco2/internal/units"
)

// testSchedule is a 8-slice schedule whose final two slices are idle, so
// tests can query both busy and empty periods.
func testSchedule(t testing.TB) *schedule.Schedule {
	t.Helper()
	s := &schedule.Schedule{
		Slices:        8,
		SliceDuration: 3600,
		Workloads: []schedule.Workload{
			{ID: 0, Cores: 8, Start: 0, Duration: 3},
			{ID: 1, Cores: 16, Start: 1, Duration: 2},
			{ID: 2, Cores: 8, Start: 3, Duration: 3},
			{ID: 3, Cores: 32, Start: 2, Duration: 2},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// newTestServer builds a server over testSchedule with a deterministic
// clock, returning the server and its registry.
func newTestServer(t testing.TB, clock *fakeClock, mutate func(*Config)) (*Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	cfg := Config{
		Schedule:    testSchedule(t),
		Budget:      1000,
		Parallelism: 1,
		BatchWindow: time.Millisecond,
	}
	if clock != nil {
		cfg.Now = clock.Now
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	return s, reg
}

// getJSON fetches a URL and decodes the JSON body, returning the status.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

func TestAttributionEndpointMatchesDirectComputation(t *testing.T) {
	srv, _ := newTestServer(t, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var resp queryResponse
	if code := getJSON(t, ts.URL+"/v1/attribution?method=ground-truth&period=0:6", &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}

	sub, ids, err := subSchedule(srv.cfg.Schedule, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The period covers 6 of 8 slices, so it prices 6/8 of the budget.
	wantBudget := 1000.0 * 6 / 8
	want, err := attribution.GroundTruth{Parallelism: 1}.Attribute(sub, units.GramsCO2e(wantBudget))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Method != "ground-truth" || resp.Period.Start != 0 || resp.Period.End != 6 {
		t.Errorf("header = %+v", resp)
	}
	if resp.BudgetGrams != wantBudget {
		t.Errorf("budget = %v, want %v", resp.BudgetGrams, wantBudget)
	}
	if resp.Signal.Quality != "static" {
		t.Errorf("quality = %q, want static", resp.Signal.Quality)
	}
	if len(resp.Attribution) != len(ids) {
		t.Fatalf("%d workloads, want %d", len(resp.Attribution), len(ids))
	}
	for i, wg := range resp.Attribution {
		if wg.ID != ids[i] || math.Abs(wg.Grams-want[i]) > 1e-9 {
			t.Errorf("workload %d = %+v, want id %d grams %v", i, wg, ids[i], want[i])
		}
	}
}

func TestTenantFilterAndAbsentTenant(t *testing.T) {
	srv, _ := newTestServer(t, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var all queryResponse
	getJSON(t, ts.URL+"/v1/attribution?period=0:6", &all)
	var one queryResponse
	if code := getJSON(t, ts.URL+"/v1/attribution?period=0:6&tenant=1", &one); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(one.Attribution) != 1 || one.Attribution[0].ID != 1 {
		t.Fatalf("tenant filter returned %+v", one.Attribution)
	}
	if one.Attribution[0].Grams != all.Attribution[1].Grams {
		t.Errorf("tenant 1 grams %v != full-vector grams %v", one.Attribution[0].Grams, all.Attribution[1].Grams)
	}

	// Workload 0 finishes at slice 3: in period 4:6 it must price at zero.
	var absent queryResponse
	if code := getJSON(t, ts.URL+"/v1/attribution?period=4:6&tenant=0", &absent); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(absent.Attribution) != 1 || absent.Attribution[0].Grams != 0 {
		t.Errorf("absent tenant priced at %+v, want 0", absent.Attribution)
	}
}

func TestShareEndpointSumsToOne(t *testing.T) {
	srv, _ := newTestServer(t, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var resp queryResponse
	if code := getJSON(t, ts.URL+"/v1/share?method=rup&period=0:6", &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	total := 0.0
	for _, sh := range resp.Shares {
		if sh.Share < 0 {
			t.Errorf("negative share %+v", sh)
		}
		total += sh.Share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", total)
	}
}

func TestBillingEndpointPricesGrams(t *testing.T) {
	srv, _ := newTestServer(t, nil, func(c *Config) { c.PricePerTonne = 250 })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var resp queryResponse
	if code := getJSON(t, ts.URL+"/v1/billing?period=0:6", &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Billing == nil || resp.Billing.PricePerTonne != 250 {
		t.Fatalf("billing = %+v", resp.Billing)
	}
	for _, line := range resp.Billing.Lines {
		if want := line.Grams / 1e6 * 250; math.Abs(line.USD-want) > 1e-12 {
			t.Errorf("line %+v: usd = %v, want %v", line, line.USD, want)
		}
	}
}

func TestBadQueriesReturn400(t *testing.T) {
	srv, _ := newTestServer(t, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, q := range []string{
		"method=nope",
		"period=5",
		"period=9:2",
		"period=0:99",
		"period=-1:3",
		"tenant=99",
		"tenant=bob",
		"period=6:8", // idle tail: nothing to attribute
	} {
		var body map[string]string
		if code := getJSON(t, ts.URL+"/v1/attribution?"+q, &body); code != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, code)
		}
		if body["error"] == "" {
			t.Errorf("query %q: missing error body", q)
		}
	}
}

func TestCacheServesRepeatQueriesAndTTLExpires(t *testing.T) {
	clock := newFakeClock()
	srv, _ := newTestServer(t, clock, func(c *Config) { c.CacheTTL = time.Minute })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	url := ts.URL + "/v1/attribution?method=fair-co2&period=0:6"
	getJSON(t, url, nil)
	getJSON(t, url, nil)
	// The share endpoint reuses the same cached vector: same key.
	getJSON(t, ts.URL+"/v1/share?method=fair-co2&period=0:6", nil)

	if got := srv.inst.Computations.With("fair-co2").Value(); got != 1 {
		t.Errorf("computations = %v, want 1 (repeat queries must hit the cache)", got)
	}
	if got := srv.inst.CacheHits.Value(); got != 2 {
		t.Errorf("cache hits = %v, want 2", got)
	}

	clock.Advance(2 * time.Minute)
	getJSON(t, url, nil)
	if got := srv.inst.Computations.With("fair-co2").Value(); got != 2 {
		t.Errorf("computations after TTL expiry = %v, want 2", got)
	}

	// A different period is a different key: new computation.
	getJSON(t, ts.URL+"/v1/attribution?method=fair-co2&period=0:4", nil)
	if got := srv.inst.Computations.With("fair-co2").Value(); got != 3 {
		t.Errorf("computations after new period = %v, want 3", got)
	}
}

// fakeSource is a controllable livesignal source.
type fakeSource struct {
	mu  sync.Mutex
	v   float64
	err error
}

func (f *fakeSource) set(v float64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.v, f.err = v, err
}

func (f *fakeSource) Current() (float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.v, f.err
}

func TestSignalModeTiesBudgetAndTTLToStaleness(t *testing.T) {
	clock := newFakeClock()
	src := &fakeSource{v: 2}
	const maxStale = 10 * time.Minute
	feed := livesignal.NewFeed(src, livesignal.FeedConfig{MaxStale: maxStale, Now: clock.Now}, nil)
	srv, _ := newTestServer(t, clock, func(c *Config) {
		c.Feed = feed
		c.SignalMaxStale = maxStale
		c.CacheTTL = 5 * time.Minute
		c.DegradedTTL = 15 * time.Second
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/attribution?method=rup&period=0:6"

	// Fresh: the period budget is intensity x the period's resource-seconds.
	var fresh queryResponse
	getJSON(t, url, &fresh)
	sub, _, err := subSchedule(srv.cfg.Schedule, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	wantBudget := 2 * float64(sub.TotalCoreSeconds())
	if fresh.Signal.Quality != "fresh" || fresh.BudgetGrams != wantBudget {
		t.Errorf("fresh response: quality %q budget %v, want fresh %v", fresh.Signal.Quality, fresh.BudgetGrams, wantBudget)
	}

	// Source dies. At age 8m the sample is stale: last-known-good budget,
	// and the result may only live for the staleness budget's remainder
	// (2m), not the full cache TTL.
	src.set(0, fmt.Errorf("signal server down"))
	clock.Advance(8 * time.Minute) // cache (5m TTL) has also expired
	var stale queryResponse
	getJSON(t, url, &stale)
	if stale.Signal.Quality != "stale" || stale.BudgetGrams != wantBudget {
		t.Errorf("stale response: quality %q budget %v, want stale %v", stale.Signal.Quality, stale.BudgetGrams, wantBudget)
	}
	comps := func() float64 { return srv.inst.Computations.With("rup").Value() }
	if got := comps(); got != 2 {
		t.Fatalf("computations = %v, want 2", got)
	}
	clock.Advance(90 * time.Second) // within the 2m remainder: cached
	getJSON(t, url, nil)
	if got := comps(); got != 2 {
		t.Errorf("stale result evicted early: computations = %v, want 2", got)
	}
	clock.Advance(time.Minute) // past the remainder: recompute, now degraded
	var degraded queryResponse
	getJSON(t, url, &degraded)
	if got := comps(); got != 3 {
		t.Fatalf("computations = %v, want 3", got)
	}
	// Past MaxStale the ladder bottoms out: static prorated budget, short TTL.
	if degraded.Signal.Quality != "degraded" || degraded.BudgetGrams != 1000.0*6/8 {
		t.Errorf("degraded response: quality %q budget %v", degraded.Signal.Quality, degraded.BudgetGrams)
	}
	clock.Advance(10 * time.Second) // inside DegradedTTL: cached
	getJSON(t, url, nil)
	if got := comps(); got != 3 {
		t.Errorf("degraded result not cached: computations = %v, want 3", got)
	}
	clock.Advance(10 * time.Second) // past DegradedTTL: recompute
	getJSON(t, url, nil)
	if got := comps(); got != 4 {
		t.Errorf("degraded result outlived its TTL: computations = %v, want 4", got)
	}

	// Recovery: the next computation prices fresh again.
	src.set(3, nil)
	clock.Advance(16 * time.Second)
	var recovered queryResponse
	getJSON(t, url, &recovered)
	if recovered.Signal.Quality != "fresh" || recovered.Signal.Intensity != 3 {
		t.Errorf("recovered response: %+v", recovered.Signal)
	}
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}
	if health["config_fingerprint"] == "" {
		t.Error("healthz missing config fingerprint")
	}

	getJSON(t, ts.URL+"/v1/attribution", nil) // populate counters

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if _, err := metrics.LintText(strings.NewReader(string(body))); err != nil {
		t.Errorf("metrics exposition does not lint: %v", err)
	}
	for _, name := range []string{
		"fairco2_attrserver_requests_total",
		"fairco2_attrserver_cache_hits_total",
		"fairco2_attrserver_cache_misses_total",
		"fairco2_attrserver_cache_evictions_total",
		"fairco2_attrserver_coalesced_total",
		"fairco2_attrserver_computations_total",
		"fairco2_attrserver_batch_size",
		"fairco2_attrserver_inflight",
	} {
		if !strings.Contains(string(body), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	if srv.inst.Requests.With("attribution", "200").Value() < 1 {
		t.Error("requests_total{attribution,200} not incremented")
	}
}

// TestTwoReplicasShareOneRegistry pins the multi-replica metrics contract:
// two Servers on one registry must not panic on duplicate registration and
// must keep their counters apart under distinct replica labels.
func TestTwoReplicasShareOneRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	mk := func(replica string) *Server {
		s, err := New(Config{
			Schedule:    testSchedule(t),
			Budget:      1000,
			Parallelism: 1,
			Replica:     replica,
		}, reg)
		if err != nil {
			t.Fatalf("replica %s: %v", replica, err)
		}
		return s
	}
	a, b := mk("0"), mk("1")

	ts := httptest.NewServer(a.Handler())
	defer ts.Close()
	getJSON(t, ts.URL+"/v1/attribution?method=rup&period=0:6", nil)

	if got := a.inst.CacheMisses.Value(); got != 1 {
		t.Errorf("replica 0 cache misses = %v, want 1", got)
	}
	if got := b.inst.CacheMisses.Value(); got != 0 {
		t.Errorf("replica 1 cache misses = %v, want 0 (aliased with replica 0)", got)
	}
	text := scrape(t, ts.URL+"/metrics")
	for _, series := range []string{
		`fairco2_attrserver_cache_misses_total{replica="0"}`,
		`fairco2_attrserver_cache_misses_total{replica="1"}`,
	} {
		if metricValue(t, text, series) != a.inst.CacheMisses.Value() && !strings.Contains(text, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	if got := metricValue(t, text, `fairco2_attrserver_cache_misses_total{replica="1"}`); got != 0 {
		t.Errorf("replica 1 series = %v, want 0", got)
	}
}

func TestConfigValidation(t *testing.T) {
	reg := metrics.NewRegistry()
	if _, err := New(Config{}, reg); err == nil {
		t.Error("nil schedule accepted")
	}
	if _, err := New(Config{Schedule: testSchedule(t)}, metrics.NewRegistry()); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := New(Config{Schedule: testSchedule(t), Budget: 1, CacheTTL: -1}, metrics.NewRegistry()); err == nil {
		t.Error("negative TTL accepted")
	}
}

// TestHealthStatusLifecycle walks /healthz through the cluster readiness
// lifecycle: ok at boot, warming (still 200 — the replica is alive, just
// not ring-ready) during catch-up, and draining as a 503 so probers and
// load balancers evict the replica ahead of shutdown.
func TestHealthStatusLifecycle(t *testing.T) {
	srv, _ := newTestServer(t, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	check := func(wantStatus string, wantCode int) {
		t.Helper()
		var health map[string]any
		if code := getJSON(t, ts.URL+"/healthz", &health); code != wantCode {
			t.Fatalf("healthz code = %d, want %d (status %q)", code, wantCode, wantStatus)
		}
		if health["status"] != wantStatus {
			t.Fatalf("healthz status = %v, want %q", health["status"], wantStatus)
		}
	}

	check(HealthOK, http.StatusOK)
	if got := srv.HealthStatus(); got != HealthOK {
		t.Fatalf("HealthStatus() = %q at boot, want %q", got, HealthOK)
	}

	srv.SetHealthStatus(HealthWarming)
	check(HealthWarming, http.StatusOK)

	srv.SetHealthStatus(HealthDraining)
	check(HealthDraining, http.StatusServiceUnavailable)

	// Draining still serves queries: only readiness flips, not the data
	// plane — in-flight and still-arriving work finishes during the drain.
	if code := getJSON(t, ts.URL+"/v1/attribution", nil); code != http.StatusOK {
		t.Fatalf("query during drain: status %d, want 200", code)
	}

	srv.SetHealthStatus(HealthOK)
	check(HealthOK, http.StatusOK)
}
