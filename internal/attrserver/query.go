package attrserver

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"fairco2/internal/checkpoint"
	"fairco2/internal/schedule"
	"fairco2/internal/units"
)

// Method names accepted by the query endpoints; they mirror the top-level
// fairco2.Method* constants.
const (
	MethodGroundTruth        = "ground-truth"
	MethodRUP                = "rup"
	MethodDemandProportional = "demand-proportional"
	MethodFairCO2            = "fair-co2"
)

// errEmptyPeriod reports a queried period with no running workloads: there
// is nothing to attribute, which is a client error, not a server one.
var errEmptyPeriod = errors.New("attrserver: period has no running workloads")

// querySpec is a parsed, validated attribution query.
type querySpec struct {
	// method names the attribution method.
	method string
	// start and end bound the queried slice window [start, end).
	start, end int
	// tenant filters the response to one workload ID; -1 means all.
	tenant int
}

// parseQuery validates the request parameters against the configured
// schedule and method set.
//
//	method  attribution method name        (default fair-co2)
//	period  slice window as "start:end"    (default the whole schedule)
//	tenant  workload ID to filter to       (default all)
func (s *Server) parseQuery(r *http.Request) (querySpec, error) {
	st := s.snapshot()
	q := querySpec{method: MethodFairCO2, start: 0, end: st.sched.Slices, tenant: -1}
	vals := r.URL.Query()

	if m := vals.Get("method"); m != "" {
		if _, ok := s.methods[m]; !ok {
			return q, fmt.Errorf("unknown method %q", m)
		}
		q.method = m
	}
	if p := vals.Get("period"); p != "" {
		a, b, ok := strings.Cut(p, ":")
		if !ok {
			return q, fmt.Errorf("period %q is not start:end", p)
		}
		start, err1 := strconv.Atoi(a)
		end, err2 := strconv.Atoi(b)
		if err1 != nil || err2 != nil {
			return q, fmt.Errorf("period %q is not start:end", p)
		}
		if start < 0 || end > st.sched.Slices || start >= end {
			return q, fmt.Errorf("period %d:%d outside schedule window [0, %d)", start, end, st.sched.Slices)
		}
		q.start, q.end = start, end
	}
	if t := vals.Get("tenant"); t != "" {
		id, err := strconv.Atoi(t)
		if err != nil || id < 0 || id >= len(st.sched.Workloads) {
			return q, fmt.Errorf("tenant %q is not a workload ID in [0, %d)", t, len(st.sched.Workloads))
		}
		q.tenant = id
	}
	return q, nil
}

// cacheKey identifies a result: the config fingerprint plus the query's
// method and period. The tenant is deliberately excluded — one cached
// vector prices every tenant in the window.
func (q querySpec) cacheKey(fp uint32) string {
	return fmt.Sprintf("cfg=%08x/m=%s/p=%d:%d", fp, q.method, q.start, q.end)
}

// CanonicalQueryKey parses r exactly as the GET query endpoints do and
// returns the computation identity it resolves to — the result-cache key.
// The cluster proxy routes on this key: identical queries route to one
// owner, whose cache + singleflight then guarantee the computation runs
// at most once cluster-wide.
func (s *Server) CanonicalQueryKey(r *http.Request) (string, error) {
	q, err := s.parseQuery(r)
	if err != nil {
		return "", err
	}
	return q.cacheKey(s.snapshot().fp), nil
}

// Fingerprint returns the serving schedule's current config fingerprint —
// the same value embedded in cache keys and rotated by delta commits.
func (s *Server) Fingerprint() uint32 { return s.snapshot().fp }

// configFingerprint keys the cache by everything a result depends on
// besides the query itself: the schedule layout and the static budget,
// hashed with the same CRC machinery the checkpointed sweeps use for their
// config keys. Parallelism is excluded — attribution is bitwise-identical
// for any worker count, the same contract checkpoint resume relies on.
func configFingerprint(s *schedule.Schedule, budget units.GramsCO2e) uint32 {
	vals := []uint64{
		uint64(s.Slices),
		math.Float64bits(float64(s.SliceDuration)),
		math.Float64bits(float64(budget)),
		uint64(len(s.Workloads)),
	}
	for _, w := range s.Workloads {
		vals = append(vals, uint64(w.Cores), uint64(w.Start), uint64(w.Duration))
	}
	return checkpoint.Uint64sCRC(vals)
}

// subSchedule restricts s to the slice window [start, end), clipping
// workloads to the window and re-identifying them densely (the schedule
// invariants require dense IDs). The returned ids map each sub-schedule
// workload back to its original ID.
func subSchedule(s *schedule.Schedule, start, end int) (*schedule.Schedule, []int, error) {
	sub := &schedule.Schedule{Slices: end - start, SliceDuration: s.SliceDuration}
	var ids []int
	for _, w := range s.Workloads {
		ws, we := max(w.Start, start), min(w.End(), end)
		if ws >= we {
			continue
		}
		sub.Workloads = append(sub.Workloads, schedule.Workload{
			ID:       len(ids),
			Cores:    w.Cores,
			Start:    ws - start,
			Duration: we - ws,
		})
		ids = append(ids, w.ID)
	}
	if len(ids) == 0 {
		return nil, nil, errEmptyPeriod
	}
	return sub, ids, nil
}
