package clusterserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fairco2/internal/attrserver"
	"fairco2/internal/metrics"
	"fairco2/internal/resilience/faultserver"
)

// startTestFleet spins a fleet and ties its lifetime to the test.
func startTestFleet(t *testing.T, cfg FleetConfig) *Fleet {
	t.Helper()
	f, err := StartFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// queryKey computes the canonical key the cluster routes a GET path on.
func queryKey(t *testing.T, f *Fleet, path string) string {
	t.Helper()
	key, err := f.Srvs[0].CanonicalQueryKey(httptest.NewRequest(http.MethodGet, path, nil))
	if err != nil {
		t.Fatalf("canonical key for %s: %v", path, err)
	}
	return key
}

// entriesByOwnership splits replica indices into the owner of path's key
// and everyone else.
func entriesByOwnership(t *testing.T, f *Fleet, key string) (owner int, others []int) {
	t.Helper()
	id := f.Nodes[0].Ring().Lookup(key)
	owner = -1
	for i, rid := range f.IDs {
		if rid == id {
			owner = i
		} else {
			others = append(others, i)
		}
	}
	if owner < 0 {
		t.Fatalf("key %q owned by %q, not a fleet member", key, id)
	}
	return owner, others
}

func get(t *testing.T, url string, hdr http.Header) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vv := range hdr {
		req.Header[k] = vv
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// series extracts one sample from the fleet's registry by family name and
// an exact label-value set.
func series(f *Fleet, name string, labels ...string) float64 {
	for _, fam := range f.Reg.Gather() {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Samples {
			if len(s.LabelValues) != len(labels) {
				continue
			}
			match := true
			for i := range labels {
				if s.LabelValues[i] != labels[i] {
					match = false
					break
				}
			}
			if match {
				return s.Value
			}
		}
	}
	return 0
}

// TestQueryForwardsSingleHopToOwner: a query entering a non-owner takes
// exactly one forwarding hop; entering the owner takes none.
func TestQueryForwardsSingleHopToOwner(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 3})
	path := "/v1/attribution?method=rup&period=0:8"
	key := queryKey(t, f, path)
	owner, others := entriesByOwnership(t, f, key)

	resp, body := get(t, f.URLs[others[0]]+path, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("via non-owner: status %d\n%s", resp.StatusCode, body)
	}
	if got := series(f, "fairco2_cluster_forwards_total", f.IDs[others[0]], f.IDs[owner]); got != 1 {
		t.Errorf("forwards from %s to %s = %v, want 1", f.IDs[others[0]], f.IDs[owner], got)
	}
	if got := series(f, "fairco2_cluster_local_requests_total", f.IDs[owner]); got != 1 {
		t.Errorf("owner local count = %v, want 1", got)
	}

	resp, body = get(t, f.URLs[owner]+path, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("via owner: status %d\n%s", resp.StatusCode, body)
	}
	if got := f.FamilyTotal("fairco2_cluster_forwards_total"); got != 1 {
		t.Errorf("cluster-wide forwards = %v after owner-entry query, want still 1", got)
	}
	// Both requests resolved to one computation: the owner's cache is the
	// cluster-wide dedup point.
	if got := f.FamilyTotal("fairco2_attrserver_computations_total"); got != 1 {
		t.Errorf("cluster-wide computations = %v, want 1", got)
	}
}

// TestForwardedRequestNeverReforwards is the loop guard: a request
// carrying the forwarded header that lands on a non-owner answers 421,
// it does not hop again.
func TestForwardedRequestNeverReforwards(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 3})
	path := "/v1/attribution?method=rup&period=0:8"
	key := queryKey(t, f, path)
	_, others := entriesByOwnership(t, f, key)

	hdr := http.Header{HeaderForwarded: []string{"test"}}
	resp, body := get(t, f.URLs[others[0]]+path, hdr)
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted forwarded request: status %d, want 421\n%s", resp.StatusCode, body)
	}
	if got := series(f, "fairco2_cluster_misrouted_total", f.IDs[others[0]]); got != 1 {
		t.Errorf("misrouted counter = %v, want 1", got)
	}
	if got := f.FamilyTotal("fairco2_cluster_forwards_total"); got != 0 {
		t.Errorf("misrouted request was re-forwarded %v times", got)
	}
}

// TestTenantRateLimitSheds: a tenant exhausting its bucket gets 429 with
// both Retry-After forms; other tenants are unaffected; a forwarded-in
// request bypasses the entry check (it was admitted upstream).
func TestTenantRateLimitSheds(t *testing.T) {
	f := startTestFleet(t, FleetConfig{
		Replicas:  1,
		Admission: AdmissionConfig{Rate: 1, Burst: 2},
	})
	path := "/v1/attribution?method=rup&period=0:8"
	hdr := http.Header{HeaderTenant: []string{"team-a"}}
	for i := 0; i < 2; i++ {
		if resp, body := get(t, f.URLs[0]+path, hdr); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d\n%s", i, resp.StatusCode, body)
		}
	}
	resp, body := get(t, f.URLs[0]+path, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request: status %d, want 429\n%s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer second count", ra)
	}
	if ms := resp.Header.Get(HeaderRetryAfterMs); ms == "" {
		t.Errorf("429 without %s header", HeaderRetryAfterMs)
	}
	if got := series(f, "fairco2_cluster_shed_total", "0", "tenant-rate"); got != 1 {
		t.Errorf("tenant-rate shed counter = %v, want 1", got)
	}

	if resp, body := get(t, f.URLs[0]+path, http.Header{HeaderTenant: []string{"team-b"}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("unrelated tenant: status %d\n%s", resp.StatusCode, body)
	}
	hdr.Set(HeaderForwarded, "9")
	if resp, body := get(t, f.URLs[0]+path, hdr); resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded-in request hit the entry bucket: status %d\n%s", resp.StatusCode, body)
	}
}

// TestQueueDepthSheds: with MaxQueue slots all busy on slow
// computations, the next locally-served request sheds with 429 and the
// configured Retry-After, and service recovers once slots free up.
func TestQueueDepthSheds(t *testing.T) {
	f := startTestFleet(t, FleetConfig{
		Replicas:    1,
		ServiceTime: 300 * time.Millisecond,
		Admission:   AdmissionConfig{MaxQueue: 2, RetryAfter: 1500 * time.Millisecond},
	})
	paths := DistinctPeriods(64, 3)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := get(t, f.URLs[0]+"/v1/attribution?method=synthetic&period="+paths[i], nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("slot-holding query %d: status %d\n%s", i, resp.StatusCode, body)
			}
		}(i)
	}
	// Wait until both slots are actually held before probing.
	deadline := time.Now().Add(5 * time.Second)
	for f.Nodes[0].queueDepth.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("slots never filled")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := get(t, f.URLs[0]+"/v1/attribution?method=synthetic&period="+paths[2], nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth query: status %d, want 429\n%s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want %q (ceil of 1.5s)", ra, "2")
	}
	if ms := resp.Header.Get(HeaderRetryAfterMs); ms != "1500" {
		t.Errorf("%s = %q, want 1500", HeaderRetryAfterMs, ms)
	}
	if got := series(f, "fairco2_cluster_shed_total", "0", "queue-depth"); got != 1 {
		t.Errorf("queue-depth shed counter = %v, want 1", got)
	}
	wg.Wait()
	if resp, body = get(t, f.URLs[0]+"/v1/attribution?method=synthetic&period="+paths[2], nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after slots freed: status %d\n%s", resp.StatusCode, body)
	}
}

// postDelta sends a demand delta and decodes the response.
func postDelta(t *testing.T, url string, body map[string]any, hdr http.Header) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/demand/delta", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vv := range hdr {
		req.Header[k] = vv
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decoding delta response %q: %v", raw, err)
		}
	}
	return resp, out
}

// TestDeltaCommitReplicatesToAllPeers: a commit entering any replica
// lands on the tenant's owner and replicates to every peer, converging
// all fingerprints; a what-if touches nothing.
func TestDeltaCommitReplicatesToAllPeers(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 3})
	before := f.Srvs[0].Fingerprint()

	resp, out := postDelta(t, f.URLs[1], map[string]any{"tenant": 1, "cores": 7}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("what-if: status %d: %v", resp.StatusCode, out)
	}
	for i, srv := range f.Srvs {
		if srv.Fingerprint() != before {
			t.Fatalf("what-if mutated replica %d's schedule", i)
		}
	}
	if got := f.FamilyTotal("fairco2_cluster_replications_total"); got != 0 {
		t.Fatalf("what-if replicated %v times", got)
	}

	resp, out = postDelta(t, f.URLs[1], map[string]any{"tenant": 1, "cores": 7, "commit": true}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit: status %d: %v", resp.StatusCode, out)
	}
	if committed, _ := out["committed"].(bool); !committed {
		t.Fatalf("commit response not marked committed: %v", out)
	}
	want := f.Srvs[0].Fingerprint()
	if want == before {
		t.Fatal("commit did not rotate the fingerprint")
	}
	for i, srv := range f.Srvs {
		if srv.Fingerprint() != want {
			t.Errorf("replica %d fingerprint %08x, want %08x: replication did not converge", i, srv.Fingerprint(), want)
		}
	}
	if got := f.FamilyTotal("fairco2_cluster_replications_total"); got != 2 {
		t.Errorf("replications = %v, want 2 (owner to both peers, no re-broadcast)", got)
	}
	if fp, _ := out["config_fingerprint"].(string); fp != fmt.Sprintf("%08x", want) {
		t.Errorf("response fingerprint %q, want %08x", fp, want)
	}
}

// TestDeltaOwnerUnreachableFailsOver: with the owner dark, a commit fails
// over to the next ring successor — here the entry replica itself — which
// applies it as acting owner. Commits are idempotent whole-workload
// replacements, so an acting-owner apply racing the real owner's recovery
// still converges; availability wins.
func TestDeltaOwnerUnreachableFailsOver(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 2})
	// Find a tenant whose delta owner is replica 1, then black it out.
	fp := f.Srvs[0].Fingerprint()
	tenant := -1
	for id := 0; id < 4; id++ {
		if f.Nodes[0].Ring().Lookup(deltaKey(fp, id)) == "1" {
			tenant = id
			break
		}
	}
	if tenant < 0 {
		t.Skip("no tenant owned by replica 1 under this fingerprint")
	}
	f.CloseReplica(1)
	resp, out := postDelta(t, f.URLs[0], map[string]any{"tenant": tenant, "cores": 9, "commit": true}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta with dead owner: status %d, want 200 via failover: %v", resp.StatusCode, out)
	}
	if out["committed"] != true {
		t.Fatalf("failover delta not committed: %v", out)
	}
	if f.Srvs[0].Fingerprint() == fp {
		t.Fatal("committed failover delta did not change the surviving replica's schedule")
	}
	if got := f.Nodes[0].inst.Failovers.Value(); got < 1 {
		t.Fatalf("failovers counter = %v, want >= 1", got)
	}
	if got := f.Nodes[0].CommitSeq(); got != 1 {
		t.Fatalf("commit log length = %d, want 1", got)
	}
}

// TestQueryFailoverOnBlackout: with the owner's listener dark, entry
// replicas compute locally — availability over dedup — and recover to
// forwarding when it returns. The blackout is injected with the
// resilience fault server so the outage script is exact.
func TestQueryFailoverOnBlackout(t *testing.T) {
	reg := metrics.NewRegistry()
	sched := FleetSchedule(64)
	mk := func(replica string) *attrserver.Server {
		cfg := attrserver.DefaultConfig()
		cfg.Schedule = sched
		cfg.Budget = 1e6
		cfg.Parallelism = 1
		cfg.BatchWindow = 0
		cfg.Replica = replica
		srv, err := attrserver.New(cfg, reg)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	srv0, srv1 := mk("0"), mk("1")

	// Replica 1 sits behind the fault server; replica 0's peer map points
	// at it, so scripted faults are exactly what 0 sees.
	hold1 := &handlerHolder{}
	fs := faultserver.New(hold1)
	defer fs.Close()
	node0, err := New(Config{ReplicaID: "0", Peers: map[string]string{"1": fs.URL()}, Server: srv0}, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts0 := httptest.NewServer(node0.Handler())
	defer ts0.Close()
	node1, err := New(Config{ReplicaID: "1", Peers: map[string]string{"0": ts0.URL}, Server: srv1}, reg)
	if err != nil {
		t.Fatal(err)
	}
	hold1.set(node1.Handler())

	// A path owned by replica 1, entered through replica 0.
	var path string
	for _, p := range DistinctPeriods(64, 64) {
		cand := "/v1/attribution?method=rup&period=" + p
		key, err := srv0.CanonicalQueryKey(httptest.NewRequest(http.MethodGet, cand, nil))
		if err != nil {
			t.Fatal(err)
		}
		if node0.Ring().Lookup(key) == "1" {
			path = cand
			break
		}
	}
	if path == "" {
		t.Fatal("no period owned by replica 1")
	}

	resp, body := get(t, ts0.URL+path, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy forward: status %d\n%s", resp.StatusCode, body)
	}
	if node0.inst.Forwards.With("1").Value() != 1 {
		t.Fatal("healthy query did not forward")
	}

	fs.Program(faultserver.Step{Reset: true, Sticky: true}) // sustained blackout
	resp, body = get(t, ts0.URL+path, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query during blackout: status %d, want 200 via local fallback\n%s", resp.StatusCode, body)
	}
	if got := node0.inst.ForwardErrors.Value(); got != 1 {
		t.Errorf("forward errors = %v, want 1", got)
	}
	if got := node0.inst.Local.Value(); got != 1 {
		t.Errorf("entry local computations = %v, want 1 (the fallback)", got)
	}

	fs.Clear() // recovery: forwarding resumes
	resp, body = get(t, ts0.URL+"/v1/share?method=rup&period="+strings.TrimPrefix(path, "/v1/attribution?method=rup&period="), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after recovery: status %d\n%s", resp.StatusCode, body)
	}
	if node0.inst.Forwards.With("1").Value() != 2 {
		t.Errorf("forwards after recovery = %v, want 2", node0.inst.Forwards.With("1").Value())
	}
}

// TestClusterInfoEndpoint pins the introspection surface.
func TestClusterInfoEndpoint(t *testing.T) {
	f := startTestFleet(t, FleetConfig{
		Replicas:  2,
		Admission: AdmissionConfig{Rate: 10, Burst: 20, MaxQueue: 4},
	})
	resp, body := get(t, f.URLs[1]+"/v1/cluster", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d\n%s", resp.StatusCode, body)
	}
	var info struct {
		Replica   string   `json:"replica"`
		Peers     []string `json:"peers"`
		VNodes    int      `json:"vnodes"`
		Admission struct {
			Rate     float64 `json:"rate"`
			MaxQueue int     `json:"max_queue"`
		} `json:"admission"`
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if info.Replica != "1" || len(info.Peers) != 2 || info.VNodes != DefaultVNodes {
		t.Errorf("info = %+v", info)
	}
	if info.Admission.Rate != 10 || info.Admission.MaxQueue != 4 {
		t.Errorf("admission info = %+v", info.Admission)
	}
}

// TestInvalidQueryRendersLocal400: queries the canonical parser rejects
// are answered locally with the attrserver's own 400, not routed.
func TestInvalidQueryRendersLocal400(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 2})
	resp, body := get(t, f.URLs[0]+"/v1/attribution?method=unknown", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "unknown method") {
		t.Errorf("unexpected 400 body: %s", body)
	}
	if got := f.FamilyTotal("fairco2_cluster_forwards_total"); got != 0 {
		t.Errorf("invalid query forwarded %v times", got)
	}
}

// TestNodeConfigValidation pins the constructor's error surface.
func TestNodeConfigValidation(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := attrserver.DefaultConfig()
	cfg.Schedule = FleetSchedule(16)
	cfg.Budget = 1e6
	srv, err := attrserver.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Server: srv}, reg); err == nil {
		t.Error("empty replica ID accepted")
	}
	if _, err := New(Config{ReplicaID: "0"}, reg); err == nil {
		t.Error("nil server accepted")
	}
	if _, err := New(Config{ReplicaID: "0", Server: srv, Peers: map[string]string{"1": ""}}, reg); err == nil {
		t.Error("peer without URL accepted")
	}
	if _, err := New(Config{ReplicaID: "0", Server: srv, Admission: AdmissionConfig{Rate: -1}}, reg); err == nil {
		t.Error("invalid admission config accepted")
	}
	if _, err := New(Config{ReplicaID: "0", Server: srv, Peers: map[string]string{"0": "ignored", "1": "http://x"}}, reg); err != nil {
		t.Errorf("self-entry in peer map rejected: %v", err)
	}
}

// TestFleetValidation pins the harness constructor.
func TestFleetValidation(t *testing.T) {
	if _, err := StartFleet(FleetConfig{}); err == nil {
		t.Error("zero replicas accepted")
	}
}
