package clusterserve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestStreamWindowRouting: index-addressed stream window reads route by
// window key — non-owner entries forward — while "latest" (a
// replica-local freshness notion) always serves locally, and the proxied
// status matches the owner's direct answer.
func TestStreamWindowRouting(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 3})
	owner := f.Nodes[0].Ring().Lookup("stream/w=7")
	var ownerIdx, otherIdx int
	for i, id := range f.IDs {
		if id == owner {
			ownerIdx = i
		} else {
			otherIdx = i
		}
	}

	direct, directBody := get(t, f.URLs[ownerIdx]+"/v1/stream/window?index=7", nil)
	viaProxy, proxyBody := get(t, f.URLs[otherIdx]+"/v1/stream/window?index=7", nil)
	if viaProxy.StatusCode != direct.StatusCode || proxyBody != directBody {
		t.Errorf("proxied window read (%d, %q) differs from owner's direct answer (%d, %q)",
			viaProxy.StatusCode, proxyBody, direct.StatusCode, directBody)
	}
	if got := series(f, "fairco2_cluster_forwards_total", f.IDs[otherIdx], owner); got != 1 {
		t.Errorf("forwards from %s to owner = %v, want 1", f.IDs[otherIdx], got)
	}

	before := f.FamilyTotal("fairco2_cluster_forwards_total")
	for i := range f.URLs {
		get(t, f.URLs[i]+"/v1/stream/window?index=latest", nil)
		get(t, f.URLs[i]+"/v1/stream/window", nil)
	}
	if got := f.FamilyTotal("fairco2_cluster_forwards_total"); got != before {
		t.Errorf(`"latest" window reads were forwarded %v times; they are replica-local`, got-before)
	}
}

// TestTenantKeyLadder pins the admission identity ladder: header, then
// query parameter, then remote host.
func TestTenantKeyLadder(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/v1/attribution?tenant=3", nil)
	r.Header.Set(HeaderTenant, "team-x")
	if got := tenantKey(r); got != "team-x" {
		t.Errorf("header tenant = %q", got)
	}
	r.Header.Del(HeaderTenant)
	if got := tenantKey(r); got != "3" {
		t.Errorf("query tenant = %q", got)
	}
	r = httptest.NewRequest(http.MethodGet, "/v1/attribution", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if got := tenantKey(r); got != "10.1.2.3" {
		t.Errorf("host tenant = %q", got)
	}
	r.RemoteAddr = "not-host-port"
	if got := tenantKey(r); got != "not-host-port" {
		t.Errorf("fallback tenant = %q", got)
	}
}

// TestDeltaBodyLimits pins the delta ingress guards: oversized bodies
// answer 413 before any routing, and malformed JSON renders the local
// server's 400.
func TestDeltaBodyLimits(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 2})

	huge := strings.NewReader(`{"tenant": 1, "pad": "` + strings.Repeat("x", maxDeltaBody) + `"}`)
	resp, err := http.Post(f.URLs[0]+"/v1/demand/delta", "application/json", huge)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized delta: status %d, want 413", resp.StatusCode)
	}

	resp, err = http.Post(f.URLs[0]+"/v1/demand/delta", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed delta: status %d, want 400", resp.StatusCode)
	}
	if got := f.FamilyTotal("fairco2_cluster_forwards_total"); got != 0 {
		t.Errorf("rejected deltas were forwarded %v times", got)
	}
}

// TestCommitSurvivesPeerReplicationFailure: a commit whose owner cannot
// reach one peer still succeeds locally — the failure is counted, not
// propagated — and the reachable peer converges.
func TestCommitSurvivesPeerReplicationFailure(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 3})
	fp := f.Srvs[0].Fingerprint()
	// Enter at tenant 1's owner directly, then black out one of the other
	// two replicas; the third stays reachable.
	const tenant = 1
	ownerIdx := -1
	for i, id := range f.IDs {
		if id == f.Nodes[0].Ring().Lookup(deltaKey(fp, tenant)) {
			ownerIdx = i
		}
	}
	dark, alive := (ownerIdx+1)%3, (ownerIdx+2)%3
	f.CloseReplica(dark)

	resp, out := postDelta(t, f.URLs[ownerIdx], map[string]any{"tenant": tenant, "cores": 6, "commit": true}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit with one peer dark: status %d: %v", resp.StatusCode, out)
	}
	if f.Srvs[alive].Fingerprint() != f.Srvs[ownerIdx].Fingerprint() {
		t.Error("reachable peer did not converge")
	}
	if got := f.FamilyTotal("fairco2_cluster_replication_errors_total"); got != 1 {
		t.Errorf("replication errors = %v, want 1 (the dark peer)", got)
	}
	if got := f.FamilyTotal("fairco2_cluster_replications_total"); got != 1 {
		t.Errorf("successful replications = %v, want 1", got)
	}
}

// TestLoadHarnessHelpers pins the harness's own edge cases.
func TestLoadHarnessHelpers(t *testing.T) {
	if got := (syntheticMethod{}).Name(); got != SyntheticMethod {
		t.Errorf("synthetic method name = %q", got)
	}
	if got := (LoadStats{Done: 5}).Throughput(); got != 0 {
		t.Errorf("zero-elapsed throughput = %v, want 0", got)
	}
	if got := (LoadStats{Done: 10, Elapsed: 2 * time.Second}).Throughput(); got != 5 {
		t.Errorf("throughput = %v, want 5", got)
	}

	resp := &http.Response{Header: http.Header{}}
	if got := retryWait(resp, 7*time.Millisecond); got != 7*time.Millisecond {
		t.Errorf("retryWait without header = %v", got)
	}
	resp.Header.Set(HeaderRetryAfterMs, "not-a-number")
	if got := retryWait(resp, 7*time.Millisecond); got != 7*time.Millisecond {
		t.Errorf("retryWait with malformed header = %v", got)
	}
	resp.Header.Set(HeaderRetryAfterMs, "40")
	if got := retryWait(resp, 7*time.Millisecond); got != 40*time.Millisecond {
		t.Errorf("retryWait with ms header = %v", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("DistinctPeriods over-ask did not panic")
		}
	}()
	DistinctPeriods(3, 100)
}
