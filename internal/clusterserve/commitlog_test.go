package clusterserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestCommitLogSincePaging: Append/Len/Since cursor semantics — paging in
// DefaultSyncPage chunks, an exhausted cursor returning nothing, and the
// append-time body copy.
func TestCommitLogSincePaging(t *testing.T) {
	var l CommitLog
	if got, next := l.Since(0, 0); got != nil || next != 0 {
		t.Fatalf("empty log Since = (%v, %d), want (nil, 0)", got, next)
	}

	buf := []byte(`{"tenant":0}`)
	if seq := l.Append(CommitEntry{Stamp: 1, Origin: "0", Body: buf}); seq != 1 {
		t.Fatalf("first Append seq = %d, want 1", seq)
	}
	buf[2] = 'X' // callers may reuse their buffer; the log must hold a copy
	if got, _ := l.Since(0, 1); string(got[0].Body) != `{"tenant":0}` {
		t.Fatalf("Append aliased the caller's buffer: %q", got[0].Body)
	}

	const total = DefaultSyncPage + 100
	for i := 2; i <= total; i++ {
		l.Append(CommitEntry{Stamp: uint64(i), Origin: "0", Body: []byte(`{}`)})
	}
	if l.Len() != total {
		t.Fatalf("Len = %d, want %d", l.Len(), total)
	}

	// Page through with the default page size: one full page, then the tail.
	page1, next := l.Since(0, 0)
	if len(page1) != DefaultSyncPage || next != DefaultSyncPage {
		t.Fatalf("page 1: %d entries, next %d; want %d, %d", len(page1), next, DefaultSyncPage, DefaultSyncPage)
	}
	page2, next := l.Since(next, 0)
	if len(page2) != 100 || next != total {
		t.Fatalf("page 2: %d entries, next %d; want 100, %d", len(page2), next, total)
	}
	if page2[0].Stamp != DefaultSyncPage+1 {
		t.Fatalf("page 2 starts at stamp %d, want %d", page2[0].Stamp, DefaultSyncPage+1)
	}
	if got, n := l.Since(next, 0); got != nil || n != total {
		t.Fatalf("exhausted cursor Since = (%v, %d), want (nil, %d)", got, n, total)
	}
}

// TestSyncEndpointWireShape: GET /v1/cluster/sync pages the commit log in
// the documented JSON shape, every entry carrying its (stamp, origin)
// identity, and rejects an unparsable cursor.
func TestSyncEndpointWireShape(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 2})

	for tenant := 0; tenant < 3; tenant++ {
		resp, out := postDelta(t, f.URLs[0], map[string]any{"tenant": tenant, "cores": 5 + tenant, "commit": true}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("commit tenant %d: status %d: %v", tenant, resp.StatusCode, out)
		}
	}

	// Replication lands every commit in both logs.
	for i, n := range f.Nodes {
		if n.CommitSeq() != 3 {
			t.Fatalf("replica %d commit log length = %d, want 3", i, n.CommitSeq())
		}
	}

	resp, body := get(t, f.URLs[1]+"/v1/cluster/sync?since=0", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync: status %d: %s", resp.StatusCode, body)
	}
	var sr syncResponse
	if err := json.Unmarshal([]byte(body), &sr); err != nil {
		t.Fatalf("decoding sync response: %v", err)
	}
	if sr.Replica != "1" || sr.Since != 0 || sr.Next != 3 || sr.More {
		t.Fatalf("sync envelope = %+v, want replica=1 since=0 next=3 more=false", sr)
	}
	if len(sr.Entries) != 3 {
		t.Fatalf("sync carried %d entries, want 3", len(sr.Entries))
	}
	for i, e := range sr.Entries {
		if e.Stamp == 0 || e.Origin == "" {
			t.Errorf("entry %d missing commit identity: %+v", i, e)
		}
		var delta struct {
			Tenant int `json:"tenant"`
		}
		if err := json.Unmarshal(e.Body, &delta); err != nil {
			t.Errorf("entry %d body is not the delta JSON: %v", i, err)
		} else if delta.Tenant != i {
			t.Errorf("entry %d is tenant %d's delta, want tenant %d (log order)", i, delta.Tenant, i)
		}
	}

	// A cursor mid-log pages the tail only.
	resp, body = get(t, f.URLs[1]+"/v1/cluster/sync?since=2", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync since=2: status %d", resp.StatusCode)
	}
	sr = syncResponse{}
	if err := json.Unmarshal([]byte(body), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Entries) != 1 || sr.Next != 3 || sr.More {
		t.Fatalf("sync since=2 = %+v, want 1 entry, next=3, more=false", sr)
	}

	resp, _ = get(t, f.URLs[1]+"/v1/cluster/sync?since=nope", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sync with bad cursor: status %d, want 400", resp.StatusCode)
	}
}

// TestApplyReplicatedOrderingGuard: the per-tenant (stamp, origin) commit
// order — duplicates and stale replays are acknowledged without applying,
// equal stamps break ties on origin, and the local Lamport clock advances
// past every stamp seen so the node's own next commit orders after.
func TestApplyReplicatedOrderingGuard(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 1})
	n := f.Nodes[0]
	body := func(cores int) []byte {
		return []byte(fmt.Sprintf(`{"tenant":2,"cores":%d,"commit":true}`, cores))
	}

	apply := func(stamp uint64, origin string, cores int) bool {
		t.Helper()
		applied, rec := n.applyReplicated(stamp, origin, body(cores))
		if rec.status != http.StatusOK {
			t.Fatalf("applyReplicated(%d, %q): status %d: %s", stamp, origin, rec.status, rec.body.String())
		}
		return applied
	}

	fp0 := f.Srvs[0].Fingerprint()
	if !apply(5, "9", 7) {
		t.Fatal("first commit (5, 9) did not apply")
	}
	fpAfter := f.Srvs[0].Fingerprint()
	if fpAfter == fp0 {
		t.Fatal("applied commit did not change the schedule")
	}
	if n.CommitSeq() != 1 {
		t.Fatalf("commit log length = %d, want 1", n.CommitSeq())
	}

	// Exact duplicate: acknowledged, no state change, no log growth.
	if apply(5, "9", 7) {
		t.Error("duplicate (5, 9) applied")
	}
	// Older stamp: a stale replay must not clobber newer state.
	if apply(4, "9", 1) {
		t.Error("stale (4, 9) applied over (5, 9)")
	}
	// Equal stamp, smaller origin: loses the tie-break.
	if apply(5, "8", 1) {
		t.Error("(5, 8) applied over (5, 9): origin tie-break inverted")
	}
	if n.CommitSeq() != 1 || f.Srvs[0].Fingerprint() != fpAfter {
		t.Fatalf("rejected replays mutated state: log=%d", n.CommitSeq())
	}
	// Equal stamp, larger origin: wins the tie-break.
	if !apply(5, "z", 3) {
		t.Error("(5, z) did not apply over (5, 9): origin tie-break inverted")
	}
	if n.CommitSeq() != 2 {
		t.Fatalf("commit log length = %d, want 2", n.CommitSeq())
	}

	// The clock advanced past stamp 5, so the node's own next commit draws
	// a strictly larger stamp and orders after everything it has seen.
	resp, out := postDelta(t, f.URLs[0], map[string]any{"tenant": 2, "cores": 11, "commit": true}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("own commit after replays: status %d: %v", resp.StatusCode, out)
	}
	entries, _ := n.clog.Since(n.CommitSeq()-1, 1)
	if len(entries) != 1 || entries[0].Stamp <= 5 || entries[0].Origin != "0" {
		t.Fatalf("own commit stamped %+v, want stamp > 5 from origin 0", entries)
	}
}

// TestRejoinCatchUp is the full rejoin story: a replica dies, commits land
// while it is dark, and on restart — with a fresh, stale schedule — its
// warmup replays the missed commits from a peer's log before it reports
// ready, converging all fingerprints.
func TestRejoinCatchUp(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 3, SelfHeal: true, Probe: fastProbes()})
	victim := f.IDs[1]

	f.CloseReplica(1)
	if !waitState(t, f, []int{0, 2}, victim, MemberDown, 2*time.Second) {
		t.Fatalf("survivors never evicted killed replica %s", victim)
	}

	for tenant := 0; tenant < 4; tenant++ {
		resp, out := postDelta(t, f.URLs[0], map[string]any{"tenant": tenant, "cores": 3 + tenant, "commit": true}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("commit tenant %d with replica dark: status %d: %v", tenant, resp.StatusCode, out)
		}
	}
	want := f.Srvs[0].Fingerprint()
	if f.Srvs[2].Fingerprint() != want {
		t.Fatal("survivors diverged before the restart")
	}

	replayedBefore := series(f, "fairco2_cluster_sync_replayed_total", victim)
	if err := f.RestartReplica(1); err != nil {
		t.Fatal(err)
	}
	if !waitState(t, f, []int{0, 2}, victim, MemberUp, 5*time.Second) {
		t.Fatalf("restarted replica %s never readmitted: node0=%v", victim, f.Nodes[0].MemberStates())
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && f.Srvs[1].Fingerprint() != want {
		time.Sleep(5 * time.Millisecond)
	}
	if got := f.Srvs[1].Fingerprint(); got != want {
		t.Fatalf("restarted replica fingerprint %08x, want %08x: catch-up did not converge", got, want)
	}
	if got := series(f, "fairco2_cluster_sync_replayed_total", victim); got <= replayedBefore {
		t.Errorf("sync_replayed for %s = %v, want > %v: rejoin did not replay the missed commits", victim, got, replayedBefore)
	}
}
