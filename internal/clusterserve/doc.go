// Package clusterserve scales the attribution query service horizontally:
// N attrserver replicas, each wrapped in a Node, share one query load by
// consistent hashing without ever computing the same answer twice.
//
// The pieces, bottom up:
//
//   - Ring is an immutable consistent-hash ring (FNV-1a over virtual
//     nodes) mapping computation keys to replica IDs. GET queries hash on
//     their canonical computation key — the attrserver result-cache key,
//     which embeds the schedule's checkpoint config fingerprint — so every
//     query with the same computation identity lands on one owner; demand
//     deltas hash on (fingerprint, tenant). Adding or removing a replica
//     moves only the keys adjacent to its virtual nodes (~1/n of the
//     space), which the ring property suite pins.
//
//   - Admission control sheds load before it costs a computation: a
//     sharded, memory-bounded table of per-tenant token buckets (millions
//     of distinct tenant keys stay within MaxTenants buckets; only full
//     buckets are evicted, which is lossless), plus a queue-depth bound on
//     locally-computed requests. Both shed with 429 and a Retry-After.
//
//   - Node is the forwarding proxy around one attrserver.Server: it
//     admits, routes, and either serves locally or forwards exactly one
//     hop to the owner (the X-FairCO2-Forwarded header is the loop guard —
//     a forwarded request that lands on a non-owner answers 421, never
//     re-forwards). Owner-side, the existing result cache, batch windows
//     and singleflight compose per shard, so identical queries cost one
//     computation cluster-wide. Committed demand deltas apply at the owner
//     and replicate synchronously to every peer (workload replacements
//     commute, so replicas converge), keeping each replica's cache warm
//     for post-commit reads. A forward that fails at the network falls
//     back to local computation — availability over deduplication — which
//     is what keeps a replica blackout invisible to clients.
//
// The load-generation harness (StartFleet, RunLoad) spins an in-process
// multi-replica cluster over httptest listeners; the load suite drives it
// with mixed hot/cold zipfian traffic to prove throughput scales with
// replica count, that summed computations equal unique queries, and that
// routed answers are bitwise-identical to a single-process oracle.
package clusterserve
