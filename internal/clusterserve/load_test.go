package clusterserve

import (
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"
)

// TestZeroDuplicateComputationsClusterWide is the dedup headline: 1200
// zipfian requests over 300 distinct periods — every request from a
// distinct tenant — enter a 3-replica cluster through all entries, and
// the summed per-replica computation counters equal exactly the number
// of unique computation keys. Hot keys and cold keys alike compute once,
// cluster-wide, because routing sends every identical query to one
// owner whose cache and singleflight absorb the rest.
func TestZeroDuplicateComputationsClusterWide(t *testing.T) {
	const (
		requests = 1200
		nPeriods = 300
	)
	f := startTestFleet(t, FleetConfig{
		Replicas: 3,
		Schedule: FleetSchedule(64),
		// Distinct-per-request tenants churn the admission table far past
		// its bound; fresh tenants must still always be admitted.
		Admission: AdmissionConfig{Rate: 1000, Burst: 4, MaxTenants: 512},
	})

	periods := DistinctPeriods(64, nPeriods)
	zipf := rand.NewZipf(rand.New(rand.NewSource(42)), 1.2, 1, nPeriods-1)
	paths := make([]string, requests)
	for i := range paths {
		method := MethodRUPFor(i)
		paths[i] = fmt.Sprintf("/v1/attribution?method=%s&period=%s", method, periods[zipf.Uint64()])
	}
	unique := map[string]bool{}
	for _, p := range paths {
		unique[p] = true
	}

	stats := RunLoad(LoadConfig{
		Entries:  f.URLs,
		Workers:  12,
		Requests: requests,
		Path:     func(seq int) string { return paths[seq] },
		Header: func(seq int) http.Header {
			return http.Header{HeaderTenant: []string{fmt.Sprintf("tenant-%d", seq)}}
		},
	})
	if stats.Errors != 0 {
		t.Fatalf("load run saw %d errors", stats.Errors)
	}
	if stats.Shed != 0 {
		t.Fatalf("fresh tenants were shed %d times; full-bucket eviction is supposed to be lossless", stats.Shed)
	}
	if stats.Done != requests {
		t.Fatalf("completed %d of %d requests", stats.Done, requests)
	}
	if got := f.FamilyTotal("fairco2_attrserver_computations_total"); got != float64(len(unique)) {
		t.Errorf("cluster-wide computations = %v over %d requests, want exactly %d (one per unique key)",
			got, requests, len(unique))
	}
	// Every node tracks at most its admission bound of tenants despite
	// seeing ~requests distinct tenant keys.
	for i, n := range f.Nodes {
		if n.admit == nil {
			t.Fatalf("replica %d has no admission table", i)
		}
		if got := n.admit.len(); got > 512 {
			t.Errorf("replica %d tracks %d tenants, bound is 512", i, got)
		}
	}
}

// MethodRUPFor alternates the two cheap methods so the key space mixes
// methods as well as periods.
func MethodRUPFor(i int) string {
	if i%2 == 0 {
		return "rup"
	}
	return "demand-proportional"
}

// scalingRun measures closed-loop throughput against a fresh fleet of
// the given size. Service time is synthetic (sleep-backed), so capacity
// is admission slots per replica over service time — replicas add
// capacity even on a single-core host, and a long service time keeps
// per-request CPU overhead (HTTP, race detector) a small fraction of the
// cycle. Worker count stays below aggregate slot capacity so throughput
// measures service capacity, not shed/retry pacing; every request is a
// distinct period, so nothing is served from cache.
func scalingRun(t *testing.T, replicas int, duration time.Duration) LoadStats {
	t.Helper()
	const (
		serviceTime = 100 * time.Millisecond
		maxQueue    = 8
	)
	f := startTestFleet(t, FleetConfig{
		Replicas:    replicas,
		VNodes:      256,
		Schedule:    FleetSchedule(96),
		ServiceTime: serviceTime,
		Admission:   AdmissionConfig{MaxQueue: maxQueue, RetryAfter: 25 * time.Millisecond},
	})
	periods := DistinctPeriods(96, 4000)
	stats := RunLoad(LoadConfig{
		Entries:  f.URLs,
		Workers:  6 * replicas,
		Duration: duration,
		Path: func(seq int) string {
			return "/v1/attribution?method=synthetic&period=" + periods[seq%len(periods)]
		},
	})
	if stats.Errors != 0 {
		t.Fatalf("%d-replica run saw %d errors", replicas, stats.Errors)
	}
	if stats.Done == 0 {
		t.Fatalf("%d-replica run completed nothing", replicas)
	}
	return stats
}

// TestThroughputScalesAcrossReplicas is the scaling headline: the same
// synthetic workload against 1 and 4 replicas must scale throughput by
// at least 3.2x. Linear would be 4.0; the bound leaves room for ring
// imbalance and forwarding overhead, nothing more.
func TestThroughputScalesAcrossReplicas(t *testing.T) {
	duration := 1500 * time.Millisecond
	if testing.Short() {
		duration = time.Second
	}
	one := scalingRun(t, 1, duration)
	four := scalingRun(t, 4, duration)
	ratio := four.Throughput() / one.Throughput()
	t.Logf("1 replica: %d done in %v (%.0f rps); 4 replicas: %d done in %v (%.0f rps); ratio %.2fx",
		one.Done, one.Elapsed.Round(time.Millisecond), one.Throughput(),
		four.Done, four.Elapsed.Round(time.Millisecond), four.Throughput(), ratio)
	if ratio < 3.2 {
		t.Errorf("4-replica throughput only %.2fx of 1-replica, want >= 3.2x", ratio)
	}
}

// TestOverloadShedsThenRecovers scripts an overload: offered load far
// above cluster capacity must be answered with 429s (never errors, never
// queue collapse), workers honoring Retry-After must still complete
// work, and once the burst ends the cluster serves normally again.
func TestOverloadShedsThenRecovers(t *testing.T) {
	f := startTestFleet(t, FleetConfig{
		Replicas:    2,
		Schedule:    FleetSchedule(96),
		ServiceTime: 50 * time.Millisecond,
		Admission:   AdmissionConfig{MaxQueue: 2, RetryAfter: 20 * time.Millisecond},
	})
	periods := DistinctPeriods(96, 2000)
	stats := RunLoad(LoadConfig{
		Entries:  f.URLs,
		Workers:  24, // ~6x the 4 admission slots
		Duration: 700 * time.Millisecond,
		Path: func(seq int) string {
			return "/v1/attribution?method=synthetic&period=" + periods[seq%len(periods)]
		},
	})
	if stats.Errors != 0 {
		t.Fatalf("overload produced %d hard errors; shedding must stay at 429", stats.Errors)
	}
	if stats.Shed == 0 {
		t.Error("6x overload was never shed; queue bound is not engaging")
	}
	if stats.Done == 0 {
		t.Error("overload starved all requests; admitted work should still complete")
	}
	if got := f.FamilyTotal("fairco2_cluster_shed_total"); got != float64(stats.Shed) {
		t.Errorf("shed counter = %v, load driver saw %d shed responses", got, stats.Shed)
	}
	t.Logf("overload: %d done, %d shed in %v", stats.Done, stats.Shed, stats.Elapsed.Round(time.Millisecond))

	// Recovery: with the burst over, a plain query answers immediately.
	resp, body := get(t, f.URLs[0]+"/v1/attribution?method=rup&period=0:8", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload query: status %d\n%s", resp.StatusCode, body)
	}
	if depth := f.FamilyTotal("fairco2_cluster_queue_depth"); depth != 0 {
		t.Errorf("queue depth %v after load drained, want 0", depth)
	}
}

// TestLoadSurvivesReplicaBlackout kills one of four replicas mid-run and
// requires the surviving entries to answer every request — keys owned by
// the dead replica fall back to local computation (availability over
// dedup), counted by the forward-error metric.
func TestLoadSurvivesReplicaBlackout(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 4, Schedule: FleetSchedule(64)})
	periods := DistinctPeriods(64, 300)
	path := func(seq int) string {
		return "/v1/attribution?method=rup&period=" + periods[seq%len(periods)]
	}
	survivors := f.URLs[:3]

	healthy := RunLoad(LoadConfig{Entries: survivors, Workers: 8, Requests: 300, Path: path})
	if healthy.Errors != 0 {
		t.Fatalf("healthy phase saw %d errors", healthy.Errors)
	}

	f.CloseReplica(3)
	dark := RunLoad(LoadConfig{Entries: survivors, Workers: 8, Requests: 600, Path: path})
	if dark.Errors != 0 {
		t.Fatalf("blackout phase saw %d errors; owners going dark must fall back locally", dark.Errors)
	}
	if dark.Done != 600 {
		t.Fatalf("blackout phase completed %d of 600", dark.Done)
	}
	if got := f.FamilyTotal("fairco2_cluster_forward_errors_total"); got == 0 {
		t.Error("no forward errors recorded; replica 3 owned none of 300 periods?")
	}
}
