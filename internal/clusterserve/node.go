package clusterserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fairco2/internal/attrserver"
	"fairco2/internal/metrics"
	"fairco2/internal/resilience"
)

// Cluster protocol headers.
const (
	// HeaderForwarded marks a request forwarded by a peer (value: the
	// forwarding replica's ID). It is the loop guard: a forwarded request
	// landing on a non-owner answers 421 instead of forwarding again.
	HeaderForwarded = "X-FairCO2-Forwarded"
	// HeaderReplicate marks a committed demand delta being replicated
	// from its owner (value: the owner's ID). Receivers apply locally and
	// never re-broadcast.
	HeaderReplicate = "X-FairCO2-Replicate"
	// HeaderCommitStamp carries a replicated commit's Lamport stamp; with
	// the origin in HeaderReplicate it identifies the commit cluster-wide,
	// so receivers can drop duplicates and stale replays.
	HeaderCommitStamp = "X-FairCO2-Commit-Stamp"
	// HeaderTenant names the requesting tenant for admission control.
	// Absent, the tenant query parameter and then the remote address
	// stand in.
	HeaderTenant = "X-FairCO2-Tenant"
	// HeaderRetryAfterMs accompanies 429 responses with the back-off in
	// milliseconds — the standard Retry-After header only carries whole
	// seconds, too coarse for the in-process load harness.
	HeaderRetryAfterMs = "X-FairCO2-Retry-After-Ms"
)

// Config wires one Node around its attrserver replica.
type Config struct {
	// ReplicaID is this node's identity on the ring (required). It should
	// match the attrserver's Replica label so routing and metrics agree.
	ReplicaID string
	// Peers maps replica ID to base URL for every cluster member. The
	// entry for ReplicaID itself is optional (a node never dials itself);
	// all other members need a URL to forward to.
	Peers map[string]string
	// VNodes is the virtual-node count per replica (0 = DefaultVNodes).
	VNodes int
	// Server is the local attrserver replica (required).
	Server *attrserver.Server
	// Admission configures load shedding at this node's ingress.
	Admission AdmissionConfig
	// Probe configures the health prober that Start launches.
	Probe ProbeConfig
	// Hedge configures hedged forwarding and the per-peer breakers.
	Hedge HedgeConfig
	// Client issues forwarded and replicated requests (default: a plain
	// http.Client; request contexts bound the forwards).
	Client *http.Client
}

// Instruments are the cluster-layer metrics for one Node, all children of
// replica-labeled families so every node in a fleet shares one registry.
type Instruments struct {
	// Local counts requests served by this replica's own attrserver
	// (fairco2_cluster_local_requests_total{replica}).
	Local *metrics.Counter
	// Forwards counts single-hop forwards by destination
	// (fairco2_cluster_forwards_total{replica,peer}).
	Forwards metrics.CurriedCounterVec
	// ForwardErrors counts forwards that failed at the network and fell
	// back to local computation — availability over deduplication.
	ForwardErrors *metrics.Counter
	// Misrouted counts forwarded-in requests this replica did not own
	// (answered 421; the loop guard firing).
	Misrouted *metrics.Counter
	// Shed counts admission rejections by reason, tenant-rate or
	// queue-depth (fairco2_cluster_shed_total{replica,reason}).
	Shed metrics.CurriedCounterVec
	// Replications / ReplicationErrors count committed-delta broadcasts
	// to peers.
	Replications      *metrics.Counter
	ReplicationErrors *metrics.Counter
	// QueueDepth gauges requests currently holding a local-compute slot.
	QueueDepth *metrics.Gauge
	// MemberState gauges each peer's membership state as seen from this
	// replica (fairco2_cluster_member_state{replica,peer}: 0 down,
	// 1 warming, 2 up).
	MemberState metrics.GaugeVec
	// Transitions counts membership state changes by peer and target
	// state (fairco2_cluster_transitions_total{replica,peer,to}).
	Transitions metrics.CurriedCounterVec
	// Hedges counts reads raced to a successor because the owner overran
	// the latency budget.
	Hedges *metrics.Counter
	// Failovers counts attempts re-routed past a failed, broken-open, or
	// ring-disagreeing candidate.
	Failovers *metrics.Counter
	// SyncReplayed counts commit-log entries replayed from peers during
	// catch-up.
	SyncReplayed *metrics.Counter
	// SyncLag gauges how long the last warmup catch-up took
	// (fairco2_cluster_sync_lag_seconds{replica}).
	SyncLag *metrics.Gauge
}

// NewInstruments registers (or joins) the cluster metric families on reg,
// bound to the given replica label.
func NewInstruments(reg *metrics.Registry, replica string) *Instruments {
	return &Instruments{
		Local: reg.GetOrNewCounterVec(
			"fairco2_cluster_local_requests_total",
			"Requests served by this replica's own attrserver.",
			"replica").With(replica),
		Forwards: reg.GetOrNewCounterVec(
			"fairco2_cluster_forwards_total",
			"Single-hop forwards to the owning replica, by destination.",
			"replica", "peer").Curry(replica),
		ForwardErrors: reg.GetOrNewCounterVec(
			"fairco2_cluster_forward_errors_total",
			"Forwards that failed at the network and fell back to local computation.",
			"replica").With(replica),
		Misrouted: reg.GetOrNewCounterVec(
			"fairco2_cluster_misrouted_total",
			"Forwarded-in requests this replica did not own (answered 421).",
			"replica").With(replica),
		Shed: reg.GetOrNewCounterVec(
			"fairco2_cluster_shed_total",
			"Admission rejections (429), by reason.",
			"replica", "reason").Curry(replica),
		Replications: reg.GetOrNewCounterVec(
			"fairco2_cluster_replications_total",
			"Committed demand deltas replicated to peers.",
			"replica").With(replica),
		ReplicationErrors: reg.GetOrNewCounterVec(
			"fairco2_cluster_replication_errors_total",
			"Committed-delta replications that failed.",
			"replica").With(replica),
		QueueDepth: reg.GetOrNewGaugeVec(
			"fairco2_cluster_queue_depth",
			"Requests currently holding a local-compute slot.",
			"replica").With(replica),
		MemberState: reg.GetOrNewGaugeVec(
			"fairco2_cluster_member_state",
			"Peer membership state as seen from this replica: 0 down, 1 warming, 2 up.",
			"replica", "peer"),
		Transitions: reg.GetOrNewCounterVec(
			"fairco2_cluster_transitions_total",
			"Membership state transitions, by peer and target state.",
			"replica", "peer", "to").Curry(replica),
		Hedges: reg.GetOrNewCounterVec(
			"fairco2_cluster_hedges_total",
			"Reads hedged to a ring successor after the owner overran the latency budget.",
			"replica").With(replica),
		Failovers: reg.GetOrNewCounterVec(
			"fairco2_cluster_failovers_total",
			"Attempts re-routed past a failed, broken-open, or ring-disagreeing candidate.",
			"replica").With(replica),
		SyncReplayed: reg.GetOrNewCounterVec(
			"fairco2_cluster_sync_replayed_total",
			"Commit-log entries replayed from peers during catch-up.",
			"replica").With(replica),
		SyncLag: reg.GetOrNewGaugeVec(
			"fairco2_cluster_sync_lag_seconds",
			"Duration of the last warmup catch-up, in seconds.",
			"replica").With(replica),
	}
}

// Node is the forwarding proxy around one attrserver replica: it admits,
// routes on the consistent-hash ring, and serves locally or forwards
// exactly one hop to the owner.
type Node struct {
	cfg    Config
	id     string
	ring   *Ring             // full configured membership, immutable
	urls   map[string]string // peer ID -> base URL, self excluded
	local  http.Handler
	client *http.Client
	admit  *bucketTable // nil when per-tenant limiting is off
	inst   *Instruments

	// active is the routing ring the prober maintains: the full ring
	// minus peers currently Down or Warming. Requests load it atomically;
	// transitions swap in a rebuilt ring.
	active atomic.Pointer[Ring]
	// clog records every committed delta this replica applied, in apply
	// order, for the /v1/cluster/sync catch-up endpoint.
	clog *CommitLog
	// member runs the health probers once Start is called; nil means
	// static membership (every configured peer permanently Up).
	member *membership
	// draining latches once BeginDrain is called so the warmup catch-up
	// finishing cannot flip a SIGTERM'd replica back to healthy.
	draining atomic.Bool

	// hedge and the per-peer breakers drive hedged failover; rnd (under
	// rngMu) draws the delta-failover backoff jitter.
	hedge    HedgeConfig
	breakers map[string]*resilience.Breaker
	rngMu    sync.Mutex
	rnd      *rand.Rand

	// queueMax bounds concurrent local computations; queueDepth tracks
	// them. Shedding compares after-increment depth against the bound.
	queueMax   int64
	queueDepth atomic.Int64

	// commitMu serializes local delta applies so the apply and the cache
	// warm it triggers are atomic with respect to other deltas landing on
	// this replica (own commits and replicated ones alike). It is never
	// held across network calls — replication fans out after release —
	// so two replicas replicating to each other cannot deadlock. It also
	// guards the commit-ordering state below.
	commitMu sync.Mutex
	// lamport is this replica's logical clock: bumped past every stamp it
	// sees, incremented when it originates a commit. Because a commit is
	// replicated to all live peers before it is acknowledged, any
	// causally-later commit draws a strictly larger stamp regardless of
	// which replica stamps it.
	lamport uint64
	// lastCommit records, per tenant, the newest (stamp, origin) applied.
	// An arriving commit — live replication and sync replay alike — is
	// applied only if it orders after this mark: duplicates are dropped
	// and an old entry replayed after a newer live commit cannot clobber
	// it. Last-writer-wins per tenant, deterministic across replicas.
	lastCommit map[int]commitMark
}

// commitMark is a commit's position in the cluster-wide order: Lamport
// stamp first, origin replica ID as the tie-break.
type commitMark struct {
	stamp  uint64
	origin string
}

// before reports whether m orders before the commit (stamp, origin) —
// i.e. that commit is newer and should apply over m.
func (m commitMark) before(stamp uint64, origin string) bool {
	if stamp != m.stamp {
		return stamp > m.stamp
	}
	return origin > m.origin
}

// New builds a Node and registers its instruments on reg.
func New(cfg Config, reg *metrics.Registry) (*Node, error) {
	if cfg.ReplicaID == "" {
		return nil, fmt.Errorf("clusterserve: empty replica ID")
	}
	if cfg.Server == nil {
		return nil, fmt.Errorf("clusterserve: nil attrserver")
	}
	cfg.Admission = cfg.Admission.withDefaults()
	if err := cfg.Admission.validate(); err != nil {
		return nil, err
	}
	members := []string{cfg.ReplicaID}
	urls := make(map[string]string, len(cfg.Peers))
	for id, u := range cfg.Peers {
		if id == cfg.ReplicaID {
			continue
		}
		if u == "" {
			return nil, fmt.Errorf("clusterserve: peer %q has no URL", id)
		}
		members = append(members, id)
		urls[id] = u
	}
	ring, err := NewRing(members, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	hedge := cfg.Hedge.withDefaults()
	n := &Node{
		cfg:      cfg,
		id:       cfg.ReplicaID,
		ring:     ring,
		urls:     urls,
		local:    cfg.Server.Handler(),
		client:   cfg.Client,
		inst:     NewInstruments(reg, cfg.ReplicaID),
		clog:     &CommitLog{},
		hedge:    hedge,
		breakers: newBreakers(urls, hedge.Breaker),
		rnd:      hedgeRNG(hedge.Seed),
		queueMax: int64(cfg.Admission.MaxQueue),

		lastCommit: make(map[int]commitMark),
	}
	n.active.Store(ring)
	if n.client == nil {
		n.client = &http.Client{}
	}
	if cfg.Admission.Rate > 0 {
		n.admit = newBucketTable(cfg.Admission.Rate, cfg.Admission.Burst, cfg.Admission.MaxTenants, cfg.Admission.Now)
	}
	return n, nil
}

// Ring returns the full configured ring (ignores health).
func (n *Node) Ring() *Ring { return n.ring }

// ActiveRing returns the ring requests currently route on: the full ring
// with Down and Warming peers excluded. Without a running prober it is
// the full ring.
func (n *Node) ActiveRing() *Ring {
	if r := n.active.Load(); r != nil {
		return r
	}
	return n.ring
}

// Start launches the self-healing layer: the rejoin catch-up (Warming
// until caught up) followed by the per-peer health probers. A node that
// is never started keeps static membership. Start and Stop are lifecycle
// calls — invoke them from one goroutine, before and after serving.
func (n *Node) Start() {
	if n.member != nil || len(n.urls) == 0 {
		return
	}
	n.member = newMembership(n, n.cfg.Probe)
	n.member.start()
}

// Stop halts the probers and waits for them to exit. The node keeps
// serving on its last-known membership; a stopped node is not restartable
// (build a new one).
func (n *Node) Stop() {
	if n.member != nil {
		n.member.halt()
	}
}

// BeginDrain marks this replica draining: /healthz turns 503 so peers'
// probers evict it from their rings within the hysteresis window, while
// in-flight and still-arriving requests keep being served. The caller
// (the server main) waits out the eviction, then shuts the listener down.
func (n *Node) BeginDrain() {
	n.draining.Store(true)
	n.cfg.Server.SetHealthStatus(attrserver.HealthDraining)
}

// setHealth publishes the replica's readiness through its attrserver —
// unless a drain has begun: a SIGTERM arriving mid-warmup must not be
// clobbered by the catch-up finishing and reporting OK.
func (n *Node) setHealth(status string) {
	if n.draining.Load() {
		return
	}
	n.cfg.Server.SetHealthStatus(status)
}

// MemberStates snapshots peer membership as seen from this node. Without
// a running prober every configured peer reads Up.
func (n *Node) MemberStates() map[string]MemberState {
	if n.member != nil {
		return n.member.states()
	}
	out := make(map[string]MemberState, len(n.urls))
	for id := range n.urls {
		out[id] = MemberUp
	}
	return out
}

// replicable reports whether committed deltas should be broadcast to
// peer. Down peers are skipped — the commit log heals them on rejoin.
func (n *Node) replicable(peer string) bool {
	if n.member == nil {
		return true
	}
	return n.member.replicable(peer)
}

// CommitSeq is the highest sequence number in this node's commit log.
func (n *Node) CommitSeq() uint64 { return n.clog.Len() }

// Handler returns the cluster routes layered over the local attrserver:
// query and delta endpoints route by key; everything else (metrics,
// healthz, stream stats) serves locally.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /v1/attribution", http.HandlerFunc(n.handleQuery))
	mux.Handle("GET /v1/share", http.HandlerFunc(n.handleQuery))
	mux.Handle("GET /v1/billing", http.HandlerFunc(n.handleQuery))
	mux.Handle("GET /v1/stream/window", http.HandlerFunc(n.handleStreamWindow))
	mux.Handle("POST /v1/demand/delta", http.HandlerFunc(n.handleDelta))
	mux.Handle("GET /v1/cluster", http.HandlerFunc(n.handleInfo))
	mux.Handle("GET /v1/cluster/sync", http.HandlerFunc(n.handleSync))
	mux.Handle("GET /healthz", http.HandlerFunc(n.handleHealthz))
	mux.Handle("/", n.local)
	return mux
}

// handleHealthz layers cluster state onto the local health document: the
// commit-log cursor peers fast-forward on, for minimal rejoin replay. The
// status field and the 503-when-draining code come from the attrserver.
func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rec := &bufferedResponse{header: http.Header{}}
	n.local.ServeHTTP(rec, r)
	var doc map[string]any
	if err := json.Unmarshal(rec.body.Bytes(), &doc); err == nil && doc != nil {
		doc["commit_seq"] = n.clog.Len()
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		writeJSON(w, status, doc)
		return
	}
	rec.flushTo(w)
}

// handleQuery routes one GET query by its canonical computation key, so
// identical queries land on one owner whose cache + singleflight dedup
// them cluster-wide.
func (n *Node) handleQuery(w http.ResponseWriter, r *http.Request) {
	forwarded := r.Header.Get(HeaderForwarded)
	if forwarded == "" && !n.admitTenant(w, r) {
		return
	}
	key, err := n.cfg.Server.CanonicalQueryKey(r)
	if err != nil {
		// Invalid query: the local server renders its canonical 400.
		n.local.ServeHTTP(w, r)
		return
	}
	n.route(w, r, key, forwarded, nil)
}

// handleStreamWindow routes index-addressed stream window reads (windows
// are deterministic across replicas fed the same script); "latest" is a
// replica-local freshness notion and serves here.
func (n *Node) handleStreamWindow(w http.ResponseWriter, r *http.Request) {
	forwarded := r.Header.Get(HeaderForwarded)
	if forwarded == "" && !n.admitTenant(w, r) {
		return
	}
	idx := r.URL.Query().Get("index")
	if idx == "" || idx == "latest" {
		n.serveLocal(w, r, nil)
		return
	}
	n.route(w, r, "stream/w="+idx, forwarded, nil)
}

// route serves key's request locally when this replica owns it, forwards
// toward the owner (with hedged failover) when a peer does, and answers
// 421 when a forwarded-in request was misrouted (the loop guard:
// forwarded work is never re-forwarded). Hedged re-routes are exempt from
// the ownership check — during a membership change replicas briefly hold
// different rings, and any healthy replica can compute any read.
func (n *Node) route(w http.ResponseWriter, r *http.Request, key, forwarded string, body []byte) {
	ring := n.ActiveRing()
	owner := ring.Lookup(key)
	if owner == n.id {
		n.serveLocal(w, r, body)
		return
	}
	if forwarded != "" {
		if r.Header.Get(HeaderHedge) != "" {
			n.serveLocal(w, r, body)
			return
		}
		n.inst.Misrouted.Inc()
		writeError(w, http.StatusMisdirectedRequest, fmt.Errorf(
			"clusterserve: replica %s does not own %q (owner %s, forwarded by %s)", n.id, key, owner, forwarded))
		return
	}
	if n.forwardHedged(w, r, ring, key, body) {
		return
	}
	// Every candidate is unreachable: compute locally rather than fail
	// the query. Cluster-wide dedup is suspended for exactly the outage.
	n.inst.ForwardErrors.Inc()
	n.serveLocal(w, r, body)
}

// serveLocal runs the request on the local attrserver under the
// queue-depth bound. body, when non-nil, replaces the (already consumed)
// request body.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	if !n.acquireSlot() {
		n.shed(w, "queue-depth", n.cfg.Admission.RetryAfter)
		return
	}
	defer n.releaseSlot()
	n.inst.Local.Inc()
	if body != nil {
		r = rewound(r, body)
	}
	n.local.ServeHTTP(w, r)
}

// deltaKey is the ring key for demand deltas: the current config
// fingerprint plus the tenant, so each tenant's updates serialize at one
// owner per schedule generation.
func deltaKey(fp uint32, tenant int) string {
	return fmt.Sprintf("delta/cfg=%08x/t=%d", fp, tenant)
}

// maxDeltaBody bounds delta request bodies, mirroring the attrserver's
// own MaxBytesReader limit.
const maxDeltaBody = 64 << 10

// handleDelta routes POST /v1/demand/delta by (fingerprint, tenant).
// What-ifs answer at the owner; commits apply at the owner and replicate
// synchronously to every peer so all caches are warm for post-commit
// reads. Forward failures answer 502 — a local fallback could double-
// apply a commit the owner already took.
func (n *Node) handleDelta(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxDeltaBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("clusterserve: reading delta body: %w", err))
		return
	}
	if len(body) > maxDeltaBody {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("clusterserve: delta body exceeds %d bytes", maxDeltaBody))
		return
	}
	if origin := r.Header.Get(HeaderReplicate); origin != "" {
		stamp, err := strconv.ParseUint(r.Header.Get(HeaderCommitStamp), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf(
				"clusterserve: replicated commit without a valid %s header: %w", HeaderCommitStamp, err))
			return
		}
		// Replicated applies skip the queue bound so replicas cannot
		// diverge under load, and never re-broadcast.
		n.inst.Local.Inc()
		_, rec := n.applyReplicated(stamp, origin, body)
		rec.flushTo(w)
		return
	}
	forwarded := r.Header.Get(HeaderForwarded)
	if forwarded == "" && !n.admitTenant(w, r) {
		return
	}
	var req struct {
		Tenant int  `json:"tenant"`
		Commit bool `json:"commit"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		// Malformed body: the local server renders its canonical 400.
		n.local.ServeHTTP(w, rewound(r, body))
		return
	}
	ring := n.ActiveRing()
	key := deltaKey(n.cfg.Server.Fingerprint(), req.Tenant)
	owner := ring.Lookup(key)
	hedged := r.Header.Get(HeaderHedge) != ""
	if owner == n.id || hedged {
		// Hedged deltas apply here even when our ring disagrees: the
		// sender's owner was unreachable, and the per-tenant commit order
		// makes an acting owner's stamp converge everywhere.
		n.applyDelta(w, r, body, req.Tenant, req.Commit)
		return
	}
	if forwarded != "" {
		n.inst.Misrouted.Inc()
		writeError(w, http.StatusMisdirectedRequest, fmt.Errorf(
			"clusterserve: replica %s does not own tenant %d deltas (owner %s, forwarded by %s)", n.id, req.Tenant, owner, forwarded))
		return
	}
	if !n.forwardDeltaHedged(w, r, ring, key, body) {
		n.inst.ForwardErrors.Inc()
		writeError(w, http.StatusBadGateway, fmt.Errorf("clusterserve: delta owner %s and successors unreachable", owner))
	}
}

// applyDelta runs an owner-side delta on the local attrserver under
// commitMu; a successful commit draws the next Lamport stamp, lands in
// the commit log, and broadcasts to every peer.
func (n *Node) applyDelta(w http.ResponseWriter, r *http.Request, body []byte, tenant int, commit bool) {
	if !n.acquireSlot() {
		n.shed(w, "queue-depth", n.cfg.Admission.RetryAfter)
		return
	}
	defer n.releaseSlot()
	n.inst.Local.Inc()
	rec := &bufferedResponse{header: http.Header{}}
	var stamp uint64
	func() {
		n.commitMu.Lock()
		defer n.commitMu.Unlock()
		n.local.ServeHTTP(rec, rewound(r, body))
		if rec.status == http.StatusOK && commit {
			n.lamport++
			stamp = n.lamport
			n.lastCommit[tenant] = commitMark{stamp: stamp, origin: n.id}
			n.clog.Append(CommitEntry{Stamp: stamp, Origin: n.id, Body: body})
		}
	}()
	if rec.status == http.StatusOK && commit {
		n.replicate(stamp, body)
	}
	rec.flushTo(w)
}

// applyReplicated applies one committed delta received from a peer — live
// replication and sync replay share this path — under the per-tenant
// commit order: the entry applies only if (stamp, origin) is newer than
// the tenant's last applied commit, so duplicates and stale replays are
// acknowledged without touching state (and without growing the log, which
// is what keeps mutual catch-up pulls from amplifying each other). The
// clock still advances past every stamp seen.
func (n *Node) applyReplicated(stamp uint64, origin string, body []byte) (bool, *bufferedResponse) {
	var req struct {
		Tenant int `json:"tenant"`
	}
	// Best-effort: a malformed body fails at the attrserver with its
	// canonical 400 below.
	_ = json.Unmarshal(body, &req)
	rec := &bufferedResponse{header: http.Header{}}
	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	if stamp > n.lamport {
		n.lamport = stamp
	}
	if mark, ok := n.lastCommit[req.Tenant]; ok && !mark.before(stamp, origin) {
		writeJSON(rec, http.StatusOK, map[string]any{"committed": true, "superseded": true})
		return false, rec
	}
	r, err := http.NewRequest(http.MethodPost, "/v1/demand/delta", bytes.NewReader(body))
	if err != nil {
		writeError(rec, http.StatusInternalServerError, err)
		return false, rec
	}
	r.Header.Set("Content-Type", "application/json")
	n.local.ServeHTTP(rec, r)
	if rec.status == http.StatusOK {
		n.lastCommit[req.Tenant] = commitMark{stamp: stamp, origin: origin}
		n.clog.Append(CommitEntry{Stamp: stamp, Origin: origin, Body: body})
		return true, rec
	}
	return false, rec
}

// replicate broadcasts a committed delta to every non-Down peer — Warming
// peers included, to keep their replay tails short; Down peers heal via
// the commit log on rejoin. The per-tenant commit order at receivers lets
// concurrent commits for different tenants interleave in any order and
// still converge.
func (n *Node) replicate(stamp uint64, body []byte) {
	for _, id := range n.ring.peers {
		base, ok := n.urls[id]
		if !ok {
			continue
		}
		if !n.replicable(id) {
			continue
		}
		req, err := http.NewRequest(http.MethodPost, base+"/v1/demand/delta", bytes.NewReader(body))
		if err != nil {
			n.inst.ReplicationErrors.Inc()
			continue
		}
		req.Header.Set(HeaderReplicate, n.id)
		req.Header.Set(HeaderCommitStamp, strconv.FormatUint(stamp, 10))
		req.Header.Set("Content-Type", "application/json")
		resp, err := n.client.Do(req)
		if err != nil {
			n.inst.ReplicationErrors.Inc()
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			n.inst.ReplicationErrors.Inc()
			continue
		}
		n.inst.Replications.Inc()
	}
}

// handleInfo serves the cluster introspection endpoint.
func (n *Node) handleInfo(w http.ResponseWriter, r *http.Request) {
	tracked := 0
	if n.admit != nil {
		tracked = n.admit.len()
	}
	members := make(map[string]string, len(n.urls))
	for id, st := range n.MemberStates() {
		members[id] = st.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"replica":     n.id,
		"peers":       n.ring.Peers(),
		"active":      n.ActiveRing().Peers(),
		"members":     members,
		"commit_seq":  n.clog.Len(),
		"vnodes":      n.ring.VNodes(),
		"fingerprint": fmt.Sprintf("%08x", n.cfg.Server.Fingerprint()),
		"queue_depth": n.queueDepth.Load(),
		"admission": map[string]any{
			"rate":            n.cfg.Admission.Rate,
			"burst":           n.cfg.Admission.Burst,
			"max_tenants":     n.cfg.Admission.MaxTenants,
			"max_queue":       n.cfg.Admission.MaxQueue,
			"tracked_tenants": tracked,
		},
	})
}

// admitTenant charges the request to its tenant's token bucket, shedding
// with the bucket's exact Retry-After when dry.
func (n *Node) admitTenant(w http.ResponseWriter, r *http.Request) bool {
	if n.admit == nil {
		return true
	}
	ok, wait := n.admit.allow(tenantKey(r))
	if !ok {
		n.shed(w, "tenant-rate", wait)
	}
	return ok
}

// tenantKey identifies the requesting tenant for admission: the explicit
// header first, then the tenant query parameter, then the remote host.
func tenantKey(r *http.Request) string {
	if t := r.Header.Get(HeaderTenant); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// shed answers 429 with both Retry-After forms and counts the reason.
func (n *Node) shed(w http.ResponseWriter, reason string, wait time.Duration) {
	n.inst.Shed.With(reason).Inc()
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	ms := wait.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set(HeaderRetryAfterMs, strconv.FormatInt(ms, 10))
	writeError(w, http.StatusTooManyRequests, fmt.Errorf("clusterserve: %s limit exceeded, retry in %v", reason, wait))
}

// acquireSlot claims a local-compute slot, failing when MaxQueue is set
// and saturated.
func (n *Node) acquireSlot() bool {
	d := n.queueDepth.Add(1)
	if n.queueMax > 0 && d > n.queueMax {
		n.queueDepth.Add(-1)
		return false
	}
	n.inst.QueueDepth.Set(float64(d))
	return true
}

func (n *Node) releaseSlot() {
	n.inst.QueueDepth.Set(float64(n.queueDepth.Add(-1)))
}

// rewound returns r with body re-installed, for handlers that consumed or
// need to replay it.
func rewound(r *http.Request, body []byte) *http.Request {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	return r2
}

// bufferedResponse captures a handler's response so the caller can act on
// the status (replicate on 200) before releasing it to the client.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.body.Write(p)
}

func (b *bufferedResponse) flushTo(w http.ResponseWriter) {
	keys := make([]string, 0, len(b.header))
	for k := range b.header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range b.header[k] {
			w.Header().Add(k, v)
		}
	}
	if b.status == 0 {
		b.status = http.StatusOK
	}
	w.WriteHeader(b.status)
	w.Write(b.body.Bytes())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
