package clusterserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fairco2/internal/attrserver"
	"fairco2/internal/metrics"
)

// Cluster protocol headers.
const (
	// HeaderForwarded marks a request forwarded by a peer (value: the
	// forwarding replica's ID). It is the loop guard: a forwarded request
	// landing on a non-owner answers 421 instead of forwarding again.
	HeaderForwarded = "X-FairCO2-Forwarded"
	// HeaderReplicate marks a committed demand delta being replicated
	// from its owner (value: the owner's ID). Receivers apply locally and
	// never re-broadcast.
	HeaderReplicate = "X-FairCO2-Replicate"
	// HeaderTenant names the requesting tenant for admission control.
	// Absent, the tenant query parameter and then the remote address
	// stand in.
	HeaderTenant = "X-FairCO2-Tenant"
	// HeaderRetryAfterMs accompanies 429 responses with the back-off in
	// milliseconds — the standard Retry-After header only carries whole
	// seconds, too coarse for the in-process load harness.
	HeaderRetryAfterMs = "X-FairCO2-Retry-After-Ms"
)

// Config wires one Node around its attrserver replica.
type Config struct {
	// ReplicaID is this node's identity on the ring (required). It should
	// match the attrserver's Replica label so routing and metrics agree.
	ReplicaID string
	// Peers maps replica ID to base URL for every cluster member. The
	// entry for ReplicaID itself is optional (a node never dials itself);
	// all other members need a URL to forward to.
	Peers map[string]string
	// VNodes is the virtual-node count per replica (0 = DefaultVNodes).
	VNodes int
	// Server is the local attrserver replica (required).
	Server *attrserver.Server
	// Admission configures load shedding at this node's ingress.
	Admission AdmissionConfig
	// Client issues forwarded and replicated requests (default: a plain
	// http.Client; request contexts bound the forwards).
	Client *http.Client
}

// Instruments are the cluster-layer metrics for one Node, all children of
// replica-labeled families so every node in a fleet shares one registry.
type Instruments struct {
	// Local counts requests served by this replica's own attrserver
	// (fairco2_cluster_local_requests_total{replica}).
	Local *metrics.Counter
	// Forwards counts single-hop forwards by destination
	// (fairco2_cluster_forwards_total{replica,peer}).
	Forwards metrics.CurriedCounterVec
	// ForwardErrors counts forwards that failed at the network and fell
	// back to local computation — availability over deduplication.
	ForwardErrors *metrics.Counter
	// Misrouted counts forwarded-in requests this replica did not own
	// (answered 421; the loop guard firing).
	Misrouted *metrics.Counter
	// Shed counts admission rejections by reason, tenant-rate or
	// queue-depth (fairco2_cluster_shed_total{replica,reason}).
	Shed metrics.CurriedCounterVec
	// Replications / ReplicationErrors count committed-delta broadcasts
	// to peers.
	Replications      *metrics.Counter
	ReplicationErrors *metrics.Counter
	// QueueDepth gauges requests currently holding a local-compute slot.
	QueueDepth *metrics.Gauge
}

// NewInstruments registers (or joins) the cluster metric families on reg,
// bound to the given replica label.
func NewInstruments(reg *metrics.Registry, replica string) *Instruments {
	return &Instruments{
		Local: reg.GetOrNewCounterVec(
			"fairco2_cluster_local_requests_total",
			"Requests served by this replica's own attrserver.",
			"replica").With(replica),
		Forwards: reg.GetOrNewCounterVec(
			"fairco2_cluster_forwards_total",
			"Single-hop forwards to the owning replica, by destination.",
			"replica", "peer").Curry(replica),
		ForwardErrors: reg.GetOrNewCounterVec(
			"fairco2_cluster_forward_errors_total",
			"Forwards that failed at the network and fell back to local computation.",
			"replica").With(replica),
		Misrouted: reg.GetOrNewCounterVec(
			"fairco2_cluster_misrouted_total",
			"Forwarded-in requests this replica did not own (answered 421).",
			"replica").With(replica),
		Shed: reg.GetOrNewCounterVec(
			"fairco2_cluster_shed_total",
			"Admission rejections (429), by reason.",
			"replica", "reason").Curry(replica),
		Replications: reg.GetOrNewCounterVec(
			"fairco2_cluster_replications_total",
			"Committed demand deltas replicated to peers.",
			"replica").With(replica),
		ReplicationErrors: reg.GetOrNewCounterVec(
			"fairco2_cluster_replication_errors_total",
			"Committed-delta replications that failed.",
			"replica").With(replica),
		QueueDepth: reg.GetOrNewGaugeVec(
			"fairco2_cluster_queue_depth",
			"Requests currently holding a local-compute slot.",
			"replica").With(replica),
	}
}

// Node is the forwarding proxy around one attrserver replica: it admits,
// routes on the consistent-hash ring, and serves locally or forwards
// exactly one hop to the owner.
type Node struct {
	cfg    Config
	id     string
	ring   *Ring
	urls   map[string]string // peer ID -> base URL, self excluded
	local  http.Handler
	client *http.Client
	admit  *bucketTable // nil when per-tenant limiting is off
	inst   *Instruments

	// queueMax bounds concurrent local computations; queueDepth tracks
	// them. Shedding compares after-increment depth against the bound.
	queueMax   int64
	queueDepth atomic.Int64

	// commitMu serializes local delta applies so the apply and the cache
	// warm it triggers are atomic with respect to other deltas landing on
	// this replica (own commits and replicated ones alike). It is never
	// held across network calls — replication fans out after release —
	// so two replicas replicating to each other cannot deadlock.
	commitMu sync.Mutex
}

// New builds a Node and registers its instruments on reg.
func New(cfg Config, reg *metrics.Registry) (*Node, error) {
	if cfg.ReplicaID == "" {
		return nil, fmt.Errorf("clusterserve: empty replica ID")
	}
	if cfg.Server == nil {
		return nil, fmt.Errorf("clusterserve: nil attrserver")
	}
	cfg.Admission = cfg.Admission.withDefaults()
	if err := cfg.Admission.validate(); err != nil {
		return nil, err
	}
	members := []string{cfg.ReplicaID}
	urls := make(map[string]string, len(cfg.Peers))
	for id, u := range cfg.Peers {
		if id == cfg.ReplicaID {
			continue
		}
		if u == "" {
			return nil, fmt.Errorf("clusterserve: peer %q has no URL", id)
		}
		members = append(members, id)
		urls[id] = u
	}
	ring, err := NewRing(members, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:      cfg,
		id:       cfg.ReplicaID,
		ring:     ring,
		urls:     urls,
		local:    cfg.Server.Handler(),
		client:   cfg.Client,
		inst:     NewInstruments(reg, cfg.ReplicaID),
		queueMax: int64(cfg.Admission.MaxQueue),
	}
	if n.client == nil {
		n.client = &http.Client{}
	}
	if cfg.Admission.Rate > 0 {
		n.admit = newBucketTable(cfg.Admission.Rate, cfg.Admission.Burst, cfg.Admission.MaxTenants, cfg.Admission.Now)
	}
	return n, nil
}

// Ring returns the node's routing ring.
func (n *Node) Ring() *Ring { return n.ring }

// Handler returns the cluster routes layered over the local attrserver:
// query and delta endpoints route by key; everything else (metrics,
// healthz, stream stats) serves locally.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /v1/attribution", http.HandlerFunc(n.handleQuery))
	mux.Handle("GET /v1/share", http.HandlerFunc(n.handleQuery))
	mux.Handle("GET /v1/billing", http.HandlerFunc(n.handleQuery))
	mux.Handle("GET /v1/stream/window", http.HandlerFunc(n.handleStreamWindow))
	mux.Handle("POST /v1/demand/delta", http.HandlerFunc(n.handleDelta))
	mux.Handle("GET /v1/cluster", http.HandlerFunc(n.handleInfo))
	mux.Handle("/", n.local)
	return mux
}

// handleQuery routes one GET query by its canonical computation key, so
// identical queries land on one owner whose cache + singleflight dedup
// them cluster-wide.
func (n *Node) handleQuery(w http.ResponseWriter, r *http.Request) {
	forwarded := r.Header.Get(HeaderForwarded)
	if forwarded == "" && !n.admitTenant(w, r) {
		return
	}
	key, err := n.cfg.Server.CanonicalQueryKey(r)
	if err != nil {
		// Invalid query: the local server renders its canonical 400.
		n.local.ServeHTTP(w, r)
		return
	}
	n.route(w, r, key, forwarded, nil)
}

// handleStreamWindow routes index-addressed stream window reads (windows
// are deterministic across replicas fed the same script); "latest" is a
// replica-local freshness notion and serves here.
func (n *Node) handleStreamWindow(w http.ResponseWriter, r *http.Request) {
	forwarded := r.Header.Get(HeaderForwarded)
	if forwarded == "" && !n.admitTenant(w, r) {
		return
	}
	idx := r.URL.Query().Get("index")
	if idx == "" || idx == "latest" {
		n.serveLocal(w, r, nil)
		return
	}
	n.route(w, r, "stream/w="+idx, forwarded, nil)
}

// route serves key's request locally when this replica owns it, forwards
// one hop when a peer does, and answers 421 when a forwarded-in request
// was misrouted (the loop guard: forwarded work is never re-forwarded).
func (n *Node) route(w http.ResponseWriter, r *http.Request, key, forwarded string, body []byte) {
	owner := n.ring.Lookup(key)
	if owner == n.id {
		n.serveLocal(w, r, body)
		return
	}
	if forwarded != "" {
		n.inst.Misrouted.Inc()
		writeError(w, http.StatusMisdirectedRequest, fmt.Errorf(
			"clusterserve: replica %s does not own %q (owner %s, forwarded by %s)", n.id, key, owner, forwarded))
		return
	}
	if n.forward(w, r, owner, body) {
		return
	}
	// The owner is unreachable: compute locally rather than fail the
	// query. Cluster-wide dedup is suspended for exactly the blackout.
	n.inst.ForwardErrors.Inc()
	n.serveLocal(w, r, body)
}

// serveLocal runs the request on the local attrserver under the
// queue-depth bound. body, when non-nil, replaces the (already consumed)
// request body.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	if !n.acquireSlot() {
		n.shed(w, "queue-depth", n.cfg.Admission.RetryAfter)
		return
	}
	defer n.releaseSlot()
	n.inst.Local.Inc()
	if body != nil {
		r = rewound(r, body)
	}
	n.local.ServeHTTP(w, r)
}

// forward relays r to owner with the loop-guard header set, streaming the
// peer's response through. It reports false — caller falls back to local
// computation — on network failure, and on a 421 from the peer (ring
// disagreement during a membership change; bouncing further would loop).
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner string, body []byte) bool {
	base, ok := n.urls[owner]
	if !ok {
		return false
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), rd)
	if err != nil {
		return false
	}
	req.Header.Set(HeaderForwarded, n.id)
	for _, h := range []string{HeaderTenant, "Content-Type", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusMisdirectedRequest {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	n.inst.Forwards.With(owner).Inc()
	for k, vv := range resp.Header {
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// deltaKey is the ring key for demand deltas: the current config
// fingerprint plus the tenant, so each tenant's updates serialize at one
// owner per schedule generation.
func deltaKey(fp uint32, tenant int) string {
	return fmt.Sprintf("delta/cfg=%08x/t=%d", fp, tenant)
}

// maxDeltaBody bounds delta request bodies, mirroring the attrserver's
// own MaxBytesReader limit.
const maxDeltaBody = 64 << 10

// handleDelta routes POST /v1/demand/delta by (fingerprint, tenant).
// What-ifs answer at the owner; commits apply at the owner and replicate
// synchronously to every peer so all caches are warm for post-commit
// reads. Forward failures answer 502 — a local fallback could double-
// apply a commit the owner already took.
func (n *Node) handleDelta(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxDeltaBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("clusterserve: reading delta body: %w", err))
		return
	}
	if len(body) > maxDeltaBody {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("clusterserve: delta body exceeds %d bytes", maxDeltaBody))
		return
	}
	if r.Header.Get(HeaderReplicate) != "" {
		n.applyDelta(w, r, body, false, true)
		return
	}
	forwarded := r.Header.Get(HeaderForwarded)
	if forwarded == "" && !n.admitTenant(w, r) {
		return
	}
	var req struct {
		Tenant int  `json:"tenant"`
		Commit bool `json:"commit"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		// Malformed body: the local server renders its canonical 400.
		n.local.ServeHTTP(w, rewound(r, body))
		return
	}
	owner := n.ring.Lookup(deltaKey(n.cfg.Server.Fingerprint(), req.Tenant))
	if owner == n.id {
		n.applyDelta(w, r, body, req.Commit, false)
		return
	}
	if forwarded != "" {
		n.inst.Misrouted.Inc()
		writeError(w, http.StatusMisdirectedRequest, fmt.Errorf(
			"clusterserve: replica %s does not own tenant %d deltas (owner %s, forwarded by %s)", n.id, req.Tenant, owner, forwarded))
		return
	}
	if !n.forward(w, r, owner, body) {
		n.inst.ForwardErrors.Inc()
		writeError(w, http.StatusBadGateway, fmt.Errorf("clusterserve: delta owner %s unreachable", owner))
	}
}

// applyDelta runs the delta on the local attrserver under commitMu, then
// — for an owner-side successful commit — broadcasts it to every peer.
// Replicated applies (isReplica) skip the queue bound so replicas cannot
// diverge under load, and never re-broadcast.
func (n *Node) applyDelta(w http.ResponseWriter, r *http.Request, body []byte, commit, isReplica bool) {
	if !isReplica {
		if !n.acquireSlot() {
			n.shed(w, "queue-depth", n.cfg.Admission.RetryAfter)
			return
		}
		defer n.releaseSlot()
	}
	n.inst.Local.Inc()
	rec := &bufferedResponse{header: http.Header{}}
	func() {
		n.commitMu.Lock()
		defer n.commitMu.Unlock()
		n.local.ServeHTTP(rec, rewound(r, body))
	}()
	if rec.status == http.StatusOK && commit && !isReplica {
		n.replicate(body)
	}
	rec.flushTo(w)
}

// replicate broadcasts a committed delta body to every peer. Workload
// replacements commute, so concurrent commits for different tenants may
// interleave at peers in any order and still converge.
func (n *Node) replicate(body []byte) {
	for _, id := range n.ring.peers {
		base, ok := n.urls[id]
		if !ok {
			continue
		}
		req, err := http.NewRequest(http.MethodPost, base+"/v1/demand/delta", bytes.NewReader(body))
		if err != nil {
			n.inst.ReplicationErrors.Inc()
			continue
		}
		req.Header.Set(HeaderReplicate, n.id)
		req.Header.Set("Content-Type", "application/json")
		resp, err := n.client.Do(req)
		if err != nil {
			n.inst.ReplicationErrors.Inc()
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			n.inst.ReplicationErrors.Inc()
			continue
		}
		n.inst.Replications.Inc()
	}
}

// handleInfo serves the cluster introspection endpoint.
func (n *Node) handleInfo(w http.ResponseWriter, r *http.Request) {
	tracked := 0
	if n.admit != nil {
		tracked = n.admit.len()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"replica":     n.id,
		"peers":       n.ring.Peers(),
		"vnodes":      n.ring.VNodes(),
		"fingerprint": fmt.Sprintf("%08x", n.cfg.Server.Fingerprint()),
		"queue_depth": n.queueDepth.Load(),
		"admission": map[string]any{
			"rate":            n.cfg.Admission.Rate,
			"burst":           n.cfg.Admission.Burst,
			"max_tenants":     n.cfg.Admission.MaxTenants,
			"max_queue":       n.cfg.Admission.MaxQueue,
			"tracked_tenants": tracked,
		},
	})
}

// admitTenant charges the request to its tenant's token bucket, shedding
// with the bucket's exact Retry-After when dry.
func (n *Node) admitTenant(w http.ResponseWriter, r *http.Request) bool {
	if n.admit == nil {
		return true
	}
	ok, wait := n.admit.allow(tenantKey(r))
	if !ok {
		n.shed(w, "tenant-rate", wait)
	}
	return ok
}

// tenantKey identifies the requesting tenant for admission: the explicit
// header first, then the tenant query parameter, then the remote host.
func tenantKey(r *http.Request) string {
	if t := r.Header.Get(HeaderTenant); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// shed answers 429 with both Retry-After forms and counts the reason.
func (n *Node) shed(w http.ResponseWriter, reason string, wait time.Duration) {
	n.inst.Shed.With(reason).Inc()
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	ms := wait.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set(HeaderRetryAfterMs, strconv.FormatInt(ms, 10))
	writeError(w, http.StatusTooManyRequests, fmt.Errorf("clusterserve: %s limit exceeded, retry in %v", reason, wait))
}

// acquireSlot claims a local-compute slot, failing when MaxQueue is set
// and saturated.
func (n *Node) acquireSlot() bool {
	d := n.queueDepth.Add(1)
	if n.queueMax > 0 && d > n.queueMax {
		n.queueDepth.Add(-1)
		return false
	}
	n.inst.QueueDepth.Set(float64(d))
	return true
}

func (n *Node) releaseSlot() {
	n.inst.QueueDepth.Set(float64(n.queueDepth.Add(-1)))
}

// rewound returns r with body re-installed, for handlers that consumed or
// need to replay it.
func rewound(r *http.Request, body []byte) *http.Request {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	return r2
}

// bufferedResponse captures a handler's response so the caller can act on
// the status (replicate on 200) before releasing it to the client.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.body.Write(p)
}

func (b *bufferedResponse) flushTo(w http.ResponseWriter) {
	keys := make([]string, 0, len(b.header))
	for k := range b.header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range b.header[k] {
			w.Header().Add(k, v)
		}
	}
	if b.status == 0 {
		b.status = http.StatusOK
	}
	w.WriteHeader(b.status)
	w.Write(b.body.Bytes())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
