package clusterserve

import (
	"testing"
	"time"
)

// TestChaosKillRestartConvergence is the acceptance scenario: kill one of
// three replicas mid-load, latency-spike another, restart the victim, and
// require (1) zero lost requests beyond shed-and-retry, (2) prober
// eviction of the victim on every survivor, (3) post-restart commit-log
// replay bringing the victim back to the fleet fingerprint, and (4) every
// replica's answers bitwise-identical to a single-process oracle that
// applied the same commit sequence.
func TestChaosKillRestartConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes seconds")
	}
	rep, err := RunChaos(ChaosConfig{
		Duration: 2500 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.String())
	if rep.Load.Errors != 0 {
		t.Errorf("load errors = %d, want 0 (every request must complete or be shed-and-retried)", rep.Load.Errors)
	}
	if rep.Load.Done == 0 {
		t.Error("load completed no requests")
	}
	if rep.CommitErrors != 0 {
		t.Errorf("commit errors = %d, want 0", rep.CommitErrors)
	}
	if rep.Commits == 0 {
		t.Error("no commits landed during the run")
	}
	if !rep.Evicted {
		t.Error("survivors never evicted the killed replica")
	}
	if !rep.Converged {
		t.Error("fleet did not converge after restart")
	}
	if rep.SyncReplayed == 0 {
		t.Error("restarted replica replayed no commits; catch-up did not run")
	}
	for i, m := range rep.Mismatches {
		if i >= 5 {
			t.Errorf("... and %d more mismatches", len(rep.Mismatches)-5)
			break
		}
		t.Errorf("differential mismatch: %s", m)
	}
}
