package clusterserve

import (
	"testing"
	"time"

	"fairco2/internal/resilience/faultserver"
)

// fastProbes is the membership test clock: quick enough that eviction and
// readmission fit a unit test, with the same K=3 / M=2 hysteresis the
// defaults use. The 20ms probe timeout leaves an in-process healthz call
// orders of magnitude of headroom even under the race detector, so a
// starved CI runner does not fabricate probe failures.
func fastProbes() ProbeConfig {
	return ProbeConfig{Interval: 40 * time.Millisecond}
}

// waitState polls until every replica in watchers sees peer in state want,
// or the deadline passes.
func waitState(t *testing.T, f *Fleet, watchers []int, peer string, want MemberState, within time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		all := true
		for _, i := range watchers {
			if f.Nodes[i].MemberStates()[peer] != want {
				all = false
				break
			}
		}
		if all {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// TestMembershipEvictsAndReadmits: a sustained outage on one replica
// drives every peer's prober through K consecutive failures to Down (the
// active ring shrinks), and recovery brings it back through M consecutive
// oks to Up (the ring regrows).
func TestMembershipEvictsAndReadmits(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 3, SelfHeal: true, Probe: fastProbes()})
	victim := f.IDs[1]

	f.Gates[1].Program(faultserver.Outage(503))
	if !waitState(t, f, []int{0, 2}, victim, MemberDown, 2*time.Second) {
		t.Fatalf("peers never evicted %s: node0=%v node2=%v", victim,
			f.Nodes[0].MemberStates(), f.Nodes[2].MemberStates())
	}
	if f.Nodes[0].ActiveRing().Contains(victim) {
		t.Errorf("node 0 active ring still contains down replica %s", victim)
	}
	if got := series(f, "fairco2_cluster_member_state", f.IDs[0], victim); got != float64(MemberDown) {
		t.Errorf("member_state gauge = %v, want %v (down)", got, float64(MemberDown))
	}
	if got := series(f, "fairco2_cluster_transitions_total", f.IDs[0], victim, "down"); got < 1 {
		t.Errorf("transitions{to=down} = %v, want >= 1", got)
	}

	f.Gates[1].Clear()
	if !waitState(t, f, []int{0, 2}, victim, MemberUp, 2*time.Second) {
		t.Fatalf("peers never readmitted %s: node0=%v node2=%v", victim,
			f.Nodes[0].MemberStates(), f.Nodes[2].MemberStates())
	}
	if !f.Nodes[0].ActiveRing().Contains(victim) {
		t.Errorf("node 0 active ring does not contain recovered replica %s", victim)
	}
	if got := series(f, "fairco2_cluster_transitions_total", f.IDs[0], victim, "up"); got < 1 {
		t.Errorf("transitions{to=up} = %v, want >= 1", got)
	}
}

// TestMembershipPartitionEvicts: the accept-then-stall partition — where
// connections establish but no bytes come back — must count as probe
// failure via the probe timeout and evict exactly like a blackout.
func TestMembershipPartitionEvicts(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 3, SelfHeal: true, Probe: fastProbes()})
	victim := f.IDs[2]

	f.Gates[2].Program(faultserver.Partitioned())
	if !waitState(t, f, []int{0, 1}, victim, MemberDown, 2*time.Second) {
		t.Fatalf("partitioned replica %s never evicted: node0=%v node1=%v", victim,
			f.Nodes[0].MemberStates(), f.Nodes[1].MemberStates())
	}

	f.Gates[2].Clear()
	if !waitState(t, f, []int{0, 1}, victim, MemberUp, 2*time.Second) {
		t.Fatalf("healed replica %s never readmitted", victim)
	}
}

// waitWarmupDone blocks until replica i's warmup catch-up has finished
// (the sync-lag gauge is set exactly once, at warmup completion).
func waitWarmupDone(t *testing.T, f *Fleet, i int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if series(f, "fairco2_cluster_sync_lag_seconds", f.IDs[i]) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replica %s warmup never completed", f.IDs[i])
}

// TestMembershipHysteresisHoldsThroughFlap: a peer whose latency flaps
// above the probe timeout on alternating probes never strings K
// consecutive failures together, so hysteresis keeps it Up — flapping
// must not churn the ring. Two replicas, so node 0's prober is the only
// consumer of the gate's alternating step sequence and the fail runs it
// observes are exactly the programmed ones.
func TestMembershipHysteresisHoldsThroughFlap(t *testing.T) {
	probe := fastProbes().withDefaults()
	f := startTestFleet(t, FleetConfig{Replicas: 2, SelfHeal: true, Probe: probe})
	victim := f.IDs[1]

	// Let node 0's warmup finish first so its health fetches don't consume
	// flap steps out from under the prober.
	waitWarmupDone(t, f, 0)

	// Alternate one timed-out probe with one healthy one, for longer than
	// the eviction window would need.
	f.Gates[1].Program(faultserver.FlapLatency(20, 4*probe.Timeout)...)
	deadline := time.Now().Add(time.Duration(3*probe.FailThreshold) * probe.Interval * 2)
	for time.Now().Before(deadline) {
		if st := f.Nodes[0].MemberStates()[victim]; st == MemberDown {
			t.Fatalf("node 0 evicted flapping replica %s (hysteresis must absorb alternating failures)", victim)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := series(f, "fairco2_cluster_transitions_total", f.IDs[0], victim, "down"); got != 0 {
		t.Errorf("transitions{to=down} = %v during flap, want 0", got)
	}
}

// TestMembershipDrainEvictsWhileServing: BeginDrain fails /healthz so
// peers evict the replica within the hysteresis window, while the
// draining replica itself keeps answering queries — the graceful-SIGTERM
// sequence the server main runs before closing its listener.
func TestMembershipDrainEvictsWhileServing(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 3, SelfHeal: true, Probe: fastProbes()})
	victim := f.IDs[1]

	f.Nodes[1].BeginDrain()
	if !waitState(t, f, []int{0, 2}, victim, MemberDown, 2*time.Second) {
		t.Fatalf("draining replica %s never evicted", victim)
	}

	// Still serving: a query straight at the draining replica completes.
	resp, body := get(t, f.URLs[1]+"/v1/attribution?method=rup&period=0:8", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("draining replica answered %d: %s", resp.StatusCode, body)
	}

	// And its own healthz reports draining with a non-200, which is what
	// load balancers and peers key off.
	resp, _ = get(t, f.URLs[1]+"/healthz", nil)
	if resp.StatusCode != 503 {
		t.Errorf("draining healthz status = %d, want 503", resp.StatusCode)
	}
}

// TestMembershipWarmingExcludedFromRing: a peer self-reporting warming is
// excluded from the active ring without hysteresis (it is alive and
// explicitly not ready) but keeps receiving replicated commits.
func TestMembershipWarmingExcludedFromRing(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 3, SelfHeal: true, Probe: fastProbes()})
	victim := f.IDs[1]

	// Wait out replica 1's own warmup: its completion publishes "ok", which
	// would clobber the status this test is about to set.
	waitWarmupDone(t, f, 1)
	f.Srvs[1].SetHealthStatus("warming")
	if !waitState(t, f, []int{0, 2}, victim, MemberWarming, 2*time.Second) {
		t.Fatalf("peers never saw %s warming", victim)
	}
	if f.Nodes[0].ActiveRing().Contains(victim) {
		t.Errorf("node 0 active ring contains warming replica %s", victim)
	}
	if !f.Nodes[0].replicable(victim) {
		t.Errorf("warming replica %s must still receive replicated commits", victim)
	}

	f.Srvs[1].SetHealthStatus("ok")
	if !waitState(t, f, []int{0, 2}, victim, MemberUp, 2*time.Second) {
		t.Fatalf("ready replica %s never readmitted", victim)
	}
}
