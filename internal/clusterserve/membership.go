package clusterserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"fairco2/internal/attrserver"
)

// MemberState is one peer's position in the health state machine. The
// numeric values are published as the fairco2_cluster_member_state gauge,
// so they are part of the metric contract: 0 down, 1 warming, 2 up.
type MemberState int32

// The three membership states. Up peers are ring members; Warming peers
// are alive but still replaying missed commits (excluded from the ring,
// still replicated to); Down peers are excluded and skipped entirely.
const (
	MemberDown    MemberState = 0
	MemberWarming MemberState = 1
	MemberUp      MemberState = 2
)

func (s MemberState) String() string {
	switch s {
	case MemberDown:
		return "down"
	case MemberWarming:
		return "warming"
	case MemberUp:
		return "up"
	}
	return "unknown"
}

// ProbeConfig tunes the health prober. Zero values select the defaults.
type ProbeConfig struct {
	// Interval is the base probe period per peer (default 500ms). Each
	// probe is scheduled Interval plus up to Jitter*Interval later, so a
	// fleet's probes decorrelate instead of arriving in waves.
	Interval time.Duration
	// Jitter is the fractional spread on Interval (default 0.2).
	Jitter float64
	// Timeout bounds one probe request (default Interval/2). A peer that
	// accepts connections but stalls past it counts as failed — the
	// partition fault mode.
	Timeout time.Duration
	// FailThreshold is K: consecutive probe failures before a peer
	// transitions to Down (default 3).
	FailThreshold int
	// UpThreshold is M: consecutive ok probes before a non-Up peer
	// transitions to Up (default 2). Hysteresis: a flapping peer must
	// string M clean probes together to rejoin the ring.
	UpThreshold int
	// Seed derives each probe loop's jitter stream, so tests replay
	// exactly (default 1).
	Seed int64
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.2
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval / 2
	}
	if c.FailThreshold < 1 {
		c.FailThreshold = 3
	}
	if c.UpThreshold < 1 {
		c.UpThreshold = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// memberHealth is one peer's hysteresis accounting. Guarded by
// membership.mu.
type memberHealth struct {
	state MemberState
	fails int // consecutive probe failures
	oks   int // consecutive ok probes
	// cursor is how far into this peer's commit log we have accounted:
	// fast-forwarded on healthy probes (live replication already delivered
	// those commits) and advanced by replay during catch-up pulls.
	cursor uint64
	// pullPending freezes cursor fast-forwarding between a transition to
	// Up and the catch-up pull it triggers, so the pull cannot be skipped
	// past by a probe racing it.
	pullPending bool
}

// membership runs the health probers for one node and owns the peer state
// machine. Transitions rebuild the node's active ring, which is swapped
// atomically so the request path never locks.
type membership struct {
	n   *Node
	cfg ProbeConfig

	mu    sync.Mutex
	peers map[string]*memberHealth

	syncMu sync.Mutex // serializes catch-up pulls

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newMembership(n *Node, cfg ProbeConfig) *membership {
	m := &membership{
		n:     n,
		cfg:   cfg.withDefaults(),
		peers: make(map[string]*memberHealth, len(n.urls)),
		stop:  make(chan struct{}),
	}
	// Peers start Up (optimistic, the static-membership behavior) so a
	// cluster with its prober briefly behind still routes everywhere.
	for id := range n.urls {
		m.peers[id] = &memberHealth{state: MemberUp}
		m.n.inst.MemberState.With(m.n.id, id).Set(float64(MemberUp))
	}
	return m
}

// start launches the warmup catch-up and the per-peer probe loops
// concurrently. Probing must not wait behind warmup: under a continuous
// commit stream catch-up can take many rounds, and failure detection has
// to keep running throughout (warmup and probe-triggered pulls serialize
// on syncMu, so they never race each other's replays).
func (m *membership) start() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.warmup()
	}()
	m.mu.Lock()
	ids := make([]string, 0, len(m.peers))
	for id := range m.peers {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	for _, id := range ids {
		m.wg.Add(1)
		go m.probeLoop(id)
	}
}

func (m *membership) halt() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

func (m *membership) stopped() bool {
	select {
	case <-m.stop:
		return true
	default:
		return false
	}
}

// sleep waits d or until halt, reporting whether it slept the full d.
func (m *membership) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-m.stop:
		return false
	case <-t.C:
		return true
	}
}

// probeLoop polls one peer's /healthz forever on a jittered interval.
func (m *membership) probeLoop(peer string) {
	defer m.wg.Done()
	rng := rand.New(rand.NewSource(m.cfg.Seed ^ int64(fnv64a(peer))))
	for {
		d := m.cfg.Interval + time.Duration(rng.Int63n(int64(float64(m.cfg.Interval)*m.cfg.Jitter)+1))
		if !m.sleep(d) {
			return
		}
		m.probe(peer)
	}
}

// probeDoc is the healthz subset the prober parses.
type probeDoc struct {
	Status    string `json:"status"`
	CommitSeq uint64 `json:"commit_seq"`
}

// probe issues one health check and feeds the outcome into the state
// machine.
func (m *membership) probe(peer string) {
	doc, err := m.fetchHealth(peer)
	switch {
	case err != nil || doc.Status == attrserver.HealthDraining:
		m.observeFailure(peer)
	case doc.Status == attrserver.HealthWarming:
		m.observeWarming(peer)
	default:
		m.observeOK(peer, doc.CommitSeq)
	}
}

func (m *membership) fetchHealth(peer string) (probeDoc, error) {
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.n.urls[peer]+"/healthz", nil)
	if err != nil {
		return probeDoc{}, err
	}
	resp, err := m.n.client.Do(req)
	if err != nil {
		return probeDoc{}, err
	}
	defer resp.Body.Close()
	var doc probeDoc
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&doc); err != nil {
		return probeDoc{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return probeDoc{}, fmt.Errorf("clusterserve: peer %s healthz status %d", peer, resp.StatusCode)
	}
	return doc, nil
}

// observeOK counts a clean probe: M consecutive of them bring a non-Up
// peer back into the ring and trigger a catch-up pull for the commits we
// missed while it was unreachable.
func (m *membership) observeOK(peer string, seq uint64) {
	m.mu.Lock()
	h := m.peers[peer]
	h.fails = 0
	h.oks++
	pull := false
	if h.state != MemberUp && h.oks >= m.cfg.UpThreshold {
		m.transitionLocked(peer, h, MemberUp)
		h.pullPending = true
		pull = true
	} else if h.state == MemberUp && h.pullPending {
		// A previous catch-up pull failed mid-way; retry it.
		pull = true
	}
	if h.state == MemberUp && !h.pullPending && seq > h.cursor {
		// Live replication already delivered these commits; account for
		// them so a later outage pulls only what was actually missed.
		h.cursor = seq
	}
	m.mu.Unlock()
	if pull {
		m.pullFrom(peer)
	}
}

func (m *membership) observeWarming(peer string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.peers[peer]
	h.fails, h.oks = 0, 0
	// A self-reported state needs no hysteresis: the peer is alive and
	// explicitly not ready.
	if h.state != MemberWarming {
		m.transitionLocked(peer, h, MemberWarming)
	}
}

func (m *membership) observeFailure(peer string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.peers[peer]
	h.oks = 0
	h.fails++
	if h.state != MemberDown && h.fails >= m.cfg.FailThreshold {
		m.transitionLocked(peer, h, MemberDown)
		// The peer may come back as a fresh incarnation whose commit log
		// restarts at zero; forget the cursor so rejoin replays its whole
		// history. Replay is idempotent, so safety costs only bounded
		// (commit-rate, not request-rate) work.
		h.cursor = 0
		h.pullPending = false
	}
}

// transitionLocked flips one peer's state, publishes the change, and
// swaps in a rebuilt ring excluding non-Up peers. Callers hold m.mu.
func (m *membership) transitionLocked(peer string, h *memberHealth, to MemberState) {
	h.state = to
	h.fails, h.oks = 0, 0
	m.n.inst.MemberState.With(m.n.id, peer).Set(float64(to))
	m.n.inst.Transitions.With(peer, to.String()).Inc()
	members := []string{m.n.id}
	for id, ph := range m.peers {
		if ph.state == MemberUp {
			members = append(members, id)
		}
	}
	ring, err := NewRing(members, m.n.ring.VNodes())
	if err != nil {
		// Unreachable: members always includes self and IDs were already
		// validated at construction. Keep the previous ring.
		return
	}
	m.n.active.Store(ring)
}

// states snapshots the peer state machine (for introspection and tests).
func (m *membership) states() map[string]MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]MemberState, len(m.peers))
	for id, h := range m.peers {
		out[id] = h.state
	}
	return out
}

// replicableLocked reports whether commits should still be broadcast to
// peer: Down peers are skipped (they will catch up on rejoin), Warming
// ones keep receiving live commits so their replay tail stays short.
func (m *membership) replicable(peer string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peers[peer].state != MemberDown
}

// maxWarmupRounds bounds the initial catch-up against a pathological peer
// that grows its log faster than we can replay it.
const maxWarmupRounds = 64

// warmup is the rejoin catch-up: the node reports Warming, replays missed
// commits from the first ok peer until two consecutive rounds find
// nothing new, then reports OK and enters normal service. With no peers
// (or none reachable — a fresh cluster booting all at once, or a full
// partition) the node serves what it has.
func (m *membership) warmup() {
	if len(m.n.urls) == 0 {
		return
	}
	m.n.setHealth(attrserver.HealthWarming)
	defer m.n.setHealth(attrserver.HealthOK)
	start := time.Now()
	defer func() { m.n.inst.SyncLag.Set(time.Since(start).Seconds()) }()

	quiet := 0
	for round := 0; quiet < 2 && round < maxWarmupRounds; round++ {
		if m.stopped() {
			return
		}
		replayed, reachable := m.pullRound()
		if !reachable {
			return
		}
		if replayed == 0 {
			quiet++
		} else {
			quiet = 0
		}
		if quiet < 2 && !m.sleep(m.cfg.Interval/2) {
			return
		}
	}
}

// pullRound drains one reachable peer's log — preferring peers reporting
// ok, whose logs are complete — and reports how many entries it replayed.
func (m *membership) pullRound() (replayed int, reachable bool) {
	type candidate struct {
		id string
		ok bool
	}
	var cands []candidate
	for id := range m.n.urls {
		doc, err := m.fetchHealth(id)
		if err != nil {
			continue
		}
		cands = append(cands, candidate{id, doc.Status == attrserver.HealthOK})
	}
	for _, preferOK := range []bool{true, false} {
		for _, c := range cands {
			if c.ok != preferOK {
				continue
			}
			n, err := m.pullFrom(c.id)
			if err == nil {
				return n, true
			}
		}
	}
	return 0, len(cands) > 0
}

// pullFrom pages through peer's commit log from our cursor, replaying
// every entry locally. Replays are idempotent whole-workload
// replacements, so overlapping pulls from different peers converge.
func (m *membership) pullFrom(peer string) (int, error) {
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	total := 0
	for page := 0; ; page++ {
		m.mu.Lock()
		cursor := m.peers[peer].cursor
		m.mu.Unlock()
		resp, err := m.fetchSync(peer, cursor)
		if err != nil {
			return total, err
		}
		for _, e := range resp.Entries {
			applied, err := m.n.applySynced(CommitEntry{Stamp: e.Stamp, Origin: e.Origin, Body: []byte(e.Body)})
			if err != nil {
				return total, err
			}
			// Only count entries that changed state: superseded and
			// duplicate entries advance the cursor without resetting the
			// warmup quiet counter, so catch-up converges even while live
			// replication keeps delivering the same commits.
			if applied {
				total++
			}
		}
		m.mu.Lock()
		if resp.Next > m.peers[peer].cursor {
			m.peers[peer].cursor = resp.Next
		}
		if !resp.More {
			m.peers[peer].pullPending = false
		}
		m.mu.Unlock()
		if !resp.More || m.stopped() {
			return total, nil
		}
	}
}

func (m *membership) fetchSync(peer string, since uint64) (*syncResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 4*m.cfg.Timeout)
	defer cancel()
	url := fmt.Sprintf("%s/v1/cluster/sync?since=%d", m.n.urls[peer], since)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := m.n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("clusterserve: sync from %s: status %d", peer, resp.StatusCode)
	}
	var out syncResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// applySynced replays one commit-log entry exactly as a live replicated
// commit would apply: through the per-tenant commit-order guard, under
// commitMu, never re-broadcast. It reports whether the entry actually
// applied — entries already delivered by live replication, or superseded
// by a newer commit, are skipped.
func (n *Node) applySynced(e CommitEntry) (bool, error) {
	applied, rec := n.applyReplicated(e.Stamp, e.Origin, e.Body)
	if rec.status != http.StatusOK {
		return false, fmt.Errorf("clusterserve: replaying synced commit: status %d: %s", rec.status, rec.body.String())
	}
	if applied {
		n.inst.SyncReplayed.Inc()
	}
	return applied, nil
}
