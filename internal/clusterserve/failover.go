package clusterserve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"time"

	"fairco2/internal/resilience"
)

// HeaderHedge marks a forwarded request that was re-routed off the ring
// owner — a hedge past a slow owner or a failover past a dead one. The
// receiving replica serves it locally even when its own ring disagrees
// about ownership: during a membership change replicas briefly hold
// different rings, and bouncing 421s between them would fail requests
// that either side could answer. HeaderForwarded still rides along, so
// hedged work is never re-forwarded — the loop guard holds.
const HeaderHedge = "X-FairCO2-Hedge"

// HedgeConfig tunes hedged forwarding. Zero values select the defaults.
type HedgeConfig struct {
	// Successors is how many ring successors beyond the owner a request
	// may fail over to (default 2).
	Successors int
	// LatencyBudget is how long to wait on the owner before hedging a
	// read to the next successor (default 150ms). Reads are idempotent,
	// so the hedge races the owner and the first answer wins.
	LatencyBudget time.Duration
	// Breaker tunes the per-peer circuit breakers that fast-fail
	// forwarding to a peer that keeps erroring. The zero value selects
	// cluster defaults (3 failures open, 1s probe interval) rather than
	// the resilience package's signal-poller defaults.
	Breaker resilience.BreakerConfig
	// Backoff shapes the pause before each delta failover attempt —
	// writes retry sequentially, never raced (default 10ms base, 250ms
	// cap).
	Backoff resilience.Backoff
	// Seed makes the backoff jitter deterministic (default 1).
	Seed int64
}

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.Successors < 1 {
		c.Successors = 2
	}
	if c.LatencyBudget <= 0 {
		c.LatencyBudget = 150 * time.Millisecond
	}
	if c.Breaker.FailureThreshold == 0 {
		c.Breaker.FailureThreshold = 3
	}
	if c.Breaker.ProbeInterval == 0 {
		c.Breaker.ProbeInterval = time.Second
	}
	if c.Backoff.Base == 0 {
		c.Backoff.Base = 10 * time.Millisecond
	}
	if c.Backoff.Cap == 0 {
		c.Backoff.Cap = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// nextDelay draws one backoff delay under the node's rng lock
// (math/rand.Rand is unsynchronized and requests are concurrent).
func (n *Node) nextDelay(prev time.Duration) time.Duration {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.hedge.Backoff.Next(n.rnd, prev)
}

// forwardRequest builds the outbound copy of r aimed at peer. hedged
// attempts carry HeaderHedge so the receiver serves them without an
// ownership check.
func (n *Node) forwardRequest(ctx context.Context, r *http.Request, peer string, body []byte, hedged bool) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, n.urls[peer]+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set(HeaderForwarded, n.id)
	if hedged {
		req.Header.Set(HeaderHedge, "1")
	}
	for _, h := range []string{HeaderTenant, "Content-Type", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return req, nil
}

// forwardHedged relays an idempotent read toward key's owner with hedged
// failover: the owner gets LatencyBudget to answer; past it (or on owner
// error / open breaker) the next ring successor is raced, and the first
// usable response streams through. It reports false — the caller computes
// locally — only when every candidate failed.
func (n *Node) forwardHedged(w http.ResponseWriter, r *http.Request, ring *Ring, key string, body []byte) bool {
	var cbuf [8]string
	cands := ring.Successors(key, 1+n.hedge.Successors, cbuf[:0])

	type outcome struct {
		peer string
		resp *http.Response
		err  error
	}
	results := make(chan outcome, len(cands))
	cancels := make([]context.CancelFunc, 0, len(cands))
	pending, next := 0, 0

	// launch starts the next viable candidate; the first is the ring
	// owner (plain forward), later ones are hedges.
	launch := func() bool {
		for next < len(cands) {
			idx := next
			peer := cands[idx]
			next++
			if peer == n.id {
				// Our own replica is the next successor: stop walking so
				// the caller's local fallback takes over once any attempts
				// already in flight conclude.
				next = len(cands)
				return false
			}
			if br := n.breakers[peer]; br != nil && br.Allow() != nil {
				n.inst.Failovers.Inc()
				continue
			}
			ctx, cancel := context.WithCancel(r.Context())
			req, err := n.forwardRequest(ctx, r, peer, body, idx > 0)
			if err != nil {
				cancel()
				continue
			}
			cancels = append(cancels, cancel)
			pending++
			go func(peer string) {
				resp, err := n.client.Do(req)
				results <- outcome{peer, resp, err}
			}(peer)
			return true
		}
		return false
	}

	defer func() {
		// Cancel losers and reap their responses off the buffered channel
		// without holding up this response.
		for _, c := range cancels {
			c()
		}
		if pending > 0 {
			go func(pending int) {
				for i := 0; i < pending; i++ {
					if o := <-results; o.resp != nil {
						io.Copy(io.Discard, o.resp.Body)
						o.resp.Body.Close()
					}
				}
			}(pending)
		}
	}()

	if !launch() {
		return false
	}
	timer := time.NewTimer(n.hedge.LatencyBudget)
	defer timer.Stop()
	for pending > 0 {
		select {
		case o := <-results:
			pending--
			br := n.breakers[o.peer]
			if o.err == nil && o.resp.StatusCode != http.StatusMisdirectedRequest {
				if br != nil {
					br.Success()
				}
				n.inst.Forwards.With(o.peer).Inc()
				streamResponse(w, o.resp)
				o.resp.Body.Close()
				return true
			}
			if o.resp != nil {
				// A 421: the peer is healthy, just disagrees about the
				// ring; record breaker success and re-route.
				io.Copy(io.Discard, o.resp.Body)
				o.resp.Body.Close()
				if br != nil {
					br.Success()
				}
			} else if br != nil && r.Context().Err() == nil {
				br.Failure()
			}
			n.inst.Failovers.Inc()
			if !launch() && pending == 0 {
				return false
			}
		case <-timer.C:
			if launch() {
				n.inst.Hedges.Inc()
				timer.Reset(n.hedge.LatencyBudget)
			}
		}
	}
	return false
}

// forwardDelta relays a demand delta toward peer, reporting true when a
// response (any status but 421) streamed through. Unlike reads, deltas
// fail over sequentially — forwardDeltaHedged never races two copies of a
// commit, it moves on only after an attempt concludes.
func (n *Node) forwardDelta(w http.ResponseWriter, r *http.Request, peer string, body []byte, hedged bool) bool {
	br := n.breakers[peer]
	req, err := n.forwardRequest(r.Context(), r, peer, body, hedged)
	if err != nil {
		return false
	}
	resp, err := n.client.Do(req)
	if err != nil {
		if br != nil && r.Context().Err() == nil {
			br.Failure()
		}
		return false
	}
	defer resp.Body.Close()
	if br != nil {
		br.Success()
	}
	if resp.StatusCode == http.StatusMisdirectedRequest {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	n.inst.Forwards.With(peer).Inc()
	streamResponse(w, resp)
	return true
}

// forwardDeltaHedged walks key's successor list sequentially: the owner
// first, then — after a short decorrelated pause — each fallback with the
// hedge header set, so the receiver applies (and replicates) the delta as
// an acting owner. The per-tenant commit order makes a fallback apply
// racing the owner's replication converge to one deterministic winner.
func (n *Node) forwardDeltaHedged(w http.ResponseWriter, r *http.Request, ring *Ring, key string, body []byte) bool {
	var cbuf [8]string
	cands := ring.Successors(key, 1+n.hedge.Successors, cbuf[:0])
	prev := time.Duration(0)
	for idx, peer := range cands {
		if peer == n.id {
			// We are the next successor: act as owner locally.
			tenant, commit := deltaIntent(body)
			n.applyDelta(w, r, body, tenant, commit)
			return true
		}
		if br := n.breakers[peer]; br != nil && br.Allow() != nil {
			n.inst.Failovers.Inc()
			continue
		}
		if idx > 0 {
			prev = n.nextDelay(prev)
			t := time.NewTimer(prev)
			select {
			case <-r.Context().Done():
				t.Stop()
				return false
			case <-t.C:
			}
		}
		if n.forwardDelta(w, r, peer, body, idx > 0) {
			if idx > 0 {
				n.inst.Failovers.Inc()
			}
			return true
		}
		n.inst.Failovers.Inc()
	}
	return false
}

// deltaIntent extracts a delta body's tenant and commit flag (used when a
// failover lands the delta on this replica itself).
func deltaIntent(body []byte) (tenant int, commit bool) {
	var req struct {
		Tenant int  `json:"tenant"`
		Commit bool `json:"commit"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return 0, false
	}
	return req.Tenant, req.Commit
}

// streamResponse copies a proxied response — headers, status, body — to w.
func streamResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vv := range resp.Header {
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// newBreakers builds one circuit breaker per peer, publishing transitions
// nowhere (the member-state gauge covers liveness; breakers are a
// fast-path latch between probe intervals).
func newBreakers(urls map[string]string, cfg resilience.BreakerConfig) map[string]*resilience.Breaker {
	out := make(map[string]*resilience.Breaker, len(urls))
	for id := range urls {
		out[id] = resilience.NewBreaker(cfg)
	}
	return out
}

// hedgeRNG seeds the delta-failover backoff stream.
func hedgeRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
