package clusterserve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
)

// CommitEntry is one committed demand delta with its cluster-wide
// identity: a Lamport stamp drawn by the replica that first applied it
// (the owner or an acting owner during failover) and that replica's ID.
// The pair (Stamp, Origin) is unique — each origin increments its clock
// per commit — and totally ordered (stamp first, origin as tie-break), so
// replicas can discard duplicates and stale replays without coordination.
type CommitEntry struct {
	Stamp  uint64 `json:"stamp"`
	Origin string `json:"origin"`
	Body   []byte `json:"body"`
}

// CommitLog is a node's sequenced record of every committed demand delta
// it has applied — its own commits, replicated ones, and entries replayed
// during catch-up alike, in local apply order. Sequence numbers are
// 1-based and local to the node; a rejoining replica replays a peer's log
// from its per-peer cursor, and the per-tenant (stamp, origin) guard on
// apply makes the replay idempotent: entries a replica already has, or
// that a newer commit superseded, are skipped.
//
// The log is in-memory and unbounded: commits are control-plane events
// (a tenant changing its demand), orders of magnitude rarer than queries,
// so retention is bounded by commit rate, not request rate.
type CommitLog struct {
	mu      sync.RWMutex
	entries []CommitEntry
}

// Append records one committed delta and returns its sequence number. The
// body is copied, so callers may reuse their buffer.
func (l *CommitLog) Append(e CommitEntry) uint64 {
	e.Body = append([]byte(nil), e.Body...)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
	return uint64(len(l.entries))
}

// Len is the highest assigned sequence number.
func (l *CommitLog) Len() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return uint64(len(l.entries))
}

// Since returns up to max entries with sequence numbers after `after`,
// plus the cursor to pass next (the sequence number of the last entry
// returned, or `after` itself when the log holds nothing newer). max <= 0
// selects DefaultSyncPage.
func (l *CommitLog) Since(after uint64, max int) ([]CommitEntry, uint64) {
	if max <= 0 {
		max = DefaultSyncPage
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	if after >= uint64(len(l.entries)) {
		return nil, after
	}
	end := after + uint64(max)
	if end > uint64(len(l.entries)) {
		end = uint64(len(l.entries))
	}
	return l.entries[after:end], end
}

// DefaultSyncPage bounds how many commit-log entries one sync response
// carries; a far-behind replica pages through with repeated requests.
const DefaultSyncPage = 256

// syncEntry is one commit on the sync wire: the entry identity plus the
// raw delta body.
type syncEntry struct {
	Stamp  uint64          `json:"stamp"`
	Origin string          `json:"origin"`
	Body   json.RawMessage `json:"body"`
}

// syncResponse is the GET /v1/cluster/sync wire shape. Entries are in log
// order.
type syncResponse struct {
	Replica string      `json:"replica"`
	Since   uint64      `json:"since"`
	Next    uint64      `json:"next"`
	More    bool        `json:"more"`
	Entries []syncEntry `json:"entries"`
}

// handleSync serves the commit-log catch-up endpoint: entries after the
// `since` cursor, paged, so a rejoining replica replays the commits it
// missed before re-entering the ring.
func (n *Node) handleSync(w http.ResponseWriter, r *http.Request) {
	var since uint64
	if s := r.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		since = v
	}
	entries, next := n.clog.Since(since, DefaultSyncPage)
	resp := syncResponse{
		Replica: n.id,
		Since:   since,
		Next:    next,
		More:    next < n.clog.Len(),
		Entries: make([]syncEntry, len(entries)),
	}
	for i, e := range entries {
		resp.Entries[i] = syncEntry{Stamp: e.Stamp, Origin: e.Origin, Body: json.RawMessage(e.Body)}
	}
	writeJSON(w, http.StatusOK, resp)
}
