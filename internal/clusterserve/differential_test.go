package clusterserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"fairco2/internal/attrserver"
	"fairco2/internal/metrics"
	"fairco2/internal/schedule"
)

// newOracle starts a single-process attrserver configured identically to
// the fleet's replicas. It is the ground truth the differential suite
// compares every routed answer against.
func newOracle(t *testing.T, sched *schedule.Schedule) (*attrserver.Server, *httptest.Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	cfg := attrserver.DefaultConfig()
	cfg.Schedule = sched
	cfg.Budget = 1e6
	cfg.Parallelism = 1
	cfg.BatchWindow = 0
	cfg.Replica = "oracle"
	srv, err := attrserver.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, reg
}

// fetchJSON GETs url and decodes the body.
func fetchJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]any{}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	return resp.StatusCode, out
}

// stripVolatile removes the only legitimately differing field: the
// wall-clock computation timestamp.
func stripVolatile(m map[string]any) map[string]any {
	delete(m, "computed_at")
	return m
}

// bitwiseEqual deep-compares two decoded JSON documents, requiring exact
// Float64bits equality on every number. encoding/json round-trips float64
// bitwise, so any divergence here is a real divergence in the computed
// attribution, not serialization noise.
func bitwiseEqual(t *testing.T, path string, got, want any) {
	t.Helper()
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			t.Errorf("%s: got %T, want object", path, got)
			return
		}
		if len(g) != len(w) {
			t.Errorf("%s: got %d keys %v, want %d keys %v", path, len(g), keys(g), len(w), keys(w))
			return
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				t.Errorf("%s: missing key %q", path, k)
				continue
			}
			bitwiseEqual(t, path+"."+k, gv, wv)
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			t.Errorf("%s: got %T, want array", path, got)
			return
		}
		if len(g) != len(w) {
			t.Errorf("%s: got %d elements, want %d", path, len(g), len(w))
			return
		}
		for i := range w {
			bitwiseEqual(t, fmt.Sprintf("%s[%d]", path, i), g[i], w[i])
		}
	case float64:
		g, ok := got.(float64)
		if !ok {
			t.Errorf("%s: got %T (%v), want number", path, got, got)
			return
		}
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Errorf("%s: %v (0x%016x) != oracle %v (0x%016x)", path, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	default:
		if got != want {
			t.Errorf("%s: %v != oracle %v", path, got, want)
		}
	}
}

func keys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

var diffMethods = []string{
	attrserver.MethodGroundTruth,
	attrserver.MethodRUP,
	attrserver.MethodDemandProportional,
	attrserver.MethodFairCO2,
}

// TestDifferentialQueriesMatchOracle routes every (method, period,
// tenant, endpoint) combination through a 3-replica cluster — rotating
// the entry replica so forwarding is exercised from every side — and
// requires the answer to be bitwise-identical to a single-process
// attrserver. It also pins cluster-wide dedup: 180 routed requests
// resolve to exactly one computation per unique computation key.
func TestDifferentialQueriesMatchOracle(t *testing.T) {
	sched := FleetSchedule(16)
	f := startTestFleet(t, FleetConfig{Replicas: 3, Schedule: sched})
	_, oracle, oreg := newOracle(t, sched)

	periods := []string{"0:16", "0:8", "4:12", "8:16", "2:6"}
	tenants := []string{"", "0", "2"}
	endpoints := []string{"/v1/attribution", "/v1/share", "/v1/billing"}

	requests := 0
	for _, m := range diffMethods {
		for _, p := range periods {
			for _, tn := range tenants {
				for _, ep := range endpoints {
					path := fmt.Sprintf("%s?method=%s&period=%s", ep, m, p)
					if tn != "" {
						path += "&tenant=" + tn
					}
					entry := f.URLs[requests%len(f.URLs)]
					requests++
					gotStatus, got := fetchJSON(t, entry+path)
					wantStatus, want := fetchJSON(t, oracle.URL+path)
					if gotStatus != wantStatus {
						t.Errorf("%s: cluster status %d, oracle %d", path, gotStatus, wantStatus)
						continue
					}
					bitwiseEqual(t, path, stripVolatile(got), stripVolatile(want))
				}
			}
		}
	}

	// Tenant filtering and the three render endpoints all share one
	// cached computation, so the cluster computed each (method, period)
	// exactly once — across all replicas.
	unique := float64(len(diffMethods) * len(periods))
	if got := f.FamilyTotal("fairco2_attrserver_computations_total"); got != unique {
		t.Errorf("cluster computations = %v over %d requests, want %v (one per unique key)", got, requests, unique)
	}
	var oracleComps float64
	for _, fam := range oreg.Gather() {
		if fam.Name == "fairco2_attrserver_computations_total" {
			for _, s := range fam.Samples {
				oracleComps += s.Value
			}
		}
	}
	if oracleComps != unique {
		t.Errorf("oracle computations = %v, want %v", oracleComps, unique)
	}
}

// TestDifferentialDeltaMatchesOracle mirrors a what-if and a commit on
// the cluster (entering through non-owner replicas) and the oracle, and
// requires bitwise-identical responses; after the commit, full-window
// reads on every method come from the commit-warmed caches — bitwise
// equal to the oracle with zero new computations.
func TestDifferentialDeltaMatchesOracle(t *testing.T) {
	sched := FleetSchedule(16)
	f := startTestFleet(t, FleetConfig{Replicas: 3, Schedule: sched})
	_, oracle, _ := newOracle(t, sched)

	post := func(t *testing.T, base string, body map[string]any) (int, map[string]any) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/demand/delta", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out := map[string]any{}
		dec, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(dec, &out); err != nil {
			t.Fatalf("decoding %q: %v", dec, err)
		}
		return resp.StatusCode, out
	}

	whatIf := map[string]any{"tenant": 1, "cores": 5}
	gs, got := post(t, f.URLs[0], whatIf)
	ws, want := post(t, oracle.URL, whatIf)
	if gs != http.StatusOK || ws != http.StatusOK {
		t.Fatalf("what-if: cluster %d, oracle %d", gs, ws)
	}
	bitwiseEqual(t, "what-if", stripVolatile(got), stripVolatile(want))

	commit := map[string]any{"tenant": 1, "cores": 5, "commit": true}
	gs, got = post(t, f.URLs[2], commit)
	ws, want = post(t, oracle.URL, commit)
	if gs != http.StatusOK || ws != http.StatusOK {
		t.Fatalf("commit: cluster %d, oracle %d", gs, ws)
	}
	bitwiseEqual(t, "commit", stripVolatile(got), stripVolatile(want))
	for i, srv := range f.Srvs {
		if srv.Fingerprint() != f.Srvs[0].Fingerprint() {
			t.Fatalf("replica %d fingerprint diverged after commit", i)
		}
	}

	// The commit warmed every replica's cache for all methods over the
	// full window; post-commit reads must match the oracle bitwise and
	// cost no new computations anywhere in the cluster.
	before := f.FamilyTotal("fairco2_attrserver_computations_total")
	for i, m := range diffMethods {
		for _, ep := range []string{"/v1/attribution", "/v1/share", "/v1/billing"} {
			path := fmt.Sprintf("%s?method=%s&period=0:16", ep, m)
			gotStatus, got := fetchJSON(t, f.URLs[i%len(f.URLs)]+path)
			wantStatus, want := fetchJSON(t, oracle.URL+path)
			if gotStatus != wantStatus {
				t.Errorf("post-commit %s: cluster status %d, oracle %d", path, gotStatus, wantStatus)
				continue
			}
			bitwiseEqual(t, "post-commit "+path, stripVolatile(got), stripVolatile(want))
		}
	}
	if after := f.FamilyTotal("fairco2_attrserver_computations_total"); after != before {
		t.Errorf("post-commit reads computed %v new results; commit-time cache warming should cover them", after-before)
	}
}
