package clusterserve

import (
	"fmt"
	"testing"
)

// FuzzRingRoute fuzzes the routing function's safety properties over
// arbitrary membership sizes, vnode counts and keys:
//
//   - total: every key maps to a ring member, never a panic;
//   - stable: two rings over the same membership (reversed construction
//     order) agree on every owner — the property that keeps forwarding
//     single-hop, since every node's ring names the same owner;
//   - loop-free under churn: after a join and the matching leave the
//     owner is restored, and mid-churn the key routes to the joiner or
//     keeps its owner, never a third replica.
func FuzzRingRoute(f *testing.F) {
	f.Add(uint8(3), uint8(64), "cfg=0012abcd/m=fair-co2/p=0:6")
	f.Add(uint8(1), uint8(1), "")
	f.Add(uint8(12), uint8(255), "delta/cfg=ffffffff/t=23")
	f.Add(uint8(200), uint8(0), "stream/w=17")
	f.Fuzz(func(t *testing.T, np, vn uint8, key string) {
		npeers := int(np)%12 + 1
		vnodes := int(vn)%256 + 1
		peers := make([]string, npeers)
		for i := range peers {
			peers[i] = fmt.Sprintf("r%d", i)
		}
		ring, err := NewRing(peers, vnodes)
		if err != nil {
			t.Fatalf("valid membership rejected: %v", err)
		}

		owner := ring.Lookup(key)
		if !ring.Contains(owner) {
			t.Fatalf("Lookup(%q) = %q, not a member of %v", key, owner, peers)
		}

		reversed := make([]string, npeers)
		for i := range peers {
			reversed[i] = peers[npeers-1-i]
		}
		ring2, err := NewRing(reversed, vnodes)
		if err != nil {
			t.Fatal(err)
		}
		if got := ring2.Lookup(key); got != owner {
			t.Fatalf("Lookup(%q) unstable across construction order: %q vs %q", key, owner, got)
		}

		grown, err := ring.With("joiner")
		if err != nil {
			t.Fatal(err)
		}
		mid := grown.Lookup(key)
		if mid != owner && mid != "joiner" {
			t.Fatalf("join moved %q from %q to incumbent %q", key, owner, mid)
		}
		back, err := grown.Without("joiner")
		if err != nil {
			t.Fatal(err)
		}
		if got := back.Lookup(key); got != owner {
			t.Fatalf("join+leave did not restore owner of %q: %q vs %q", key, got, owner)
		}
	})
}
