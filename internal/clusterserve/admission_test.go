package clusterserve

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for exact refill arithmetic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestTokenBucketRefillExactness pins the bucket arithmetic against a
// fake clock: burst admits back-to-back, a dry bucket reports the exact
// deficit as its Retry-After, and refill credits precisely rate*dt.
func TestTokenBucketRefillExactness(t *testing.T) {
	clk := newFakeClock()
	table := newBucketTable(10, 2, 1024, clk.Now)

	for i := 0; i < 2; i++ {
		if ok, _ := table.allow("tenant-a"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := table.allow("tenant-a")
	if ok {
		t.Fatal("dry bucket admitted")
	}
	if wait != 100*time.Millisecond {
		t.Fatalf("dry bucket Retry-After = %v, want 100ms (1 token at 10/s)", wait)
	}

	clk.Advance(50 * time.Millisecond) // +0.5 tokens
	ok, wait = table.allow("tenant-a")
	if ok {
		t.Fatal("half-refilled bucket admitted")
	}
	if wait != 50*time.Millisecond {
		t.Fatalf("half-refilled Retry-After = %v, want 50ms", wait)
	}

	clk.Advance(50 * time.Millisecond) // exactly 1 token
	if ok, _ = table.allow("tenant-a"); !ok {
		t.Fatal("fully-refilled token denied")
	}

	// An unrelated tenant is untouched by tenant-a's exhaustion.
	if ok, _ = table.allow("tenant-b"); !ok {
		t.Fatal("fresh tenant denied")
	}
}

// TestTokenBucketRefillCapsAtBurst: idle time never accrues more than
// burst.
func TestTokenBucketRefillCapsAtBurst(t *testing.T) {
	clk := newFakeClock()
	table := newBucketTable(100, 3, 1024, clk.Now)
	if ok, _ := table.allow("t"); !ok {
		t.Fatal("first request denied")
	}
	clk.Advance(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := table.allow("t"); !ok {
			t.Fatalf("request %d after long idle denied; refill overflowed burst", i)
		}
	}
	if ok, _ := table.allow("t"); ok {
		t.Fatal("4th request admitted; refill exceeded burst 3")
	}
}

// TestBucketTableBoundedUnderMillionsOfTenants drives millions of
// distinct tenant keys through a small table and checks the memory bound
// holds while every fresh tenant is still admitted (eviction of full
// buckets is lossless).
func TestBucketTableBoundedUnderMillionsOfTenants(t *testing.T) {
	tenants := 2_000_000
	if testing.Short() {
		tenants = 200_000
	}
	const maxTenants = 4096
	clk := newFakeClock()
	table := newBucketTable(1, 4, maxTenants, clk.Now)
	for i := 0; i < tenants; i++ {
		if ok, _ := table.allow(fmt.Sprintf("tenant-%d", i)); !ok {
			t.Fatalf("fresh tenant %d denied; eviction is supposed to be lossless", i)
		}
	}
	if n := table.len(); n > maxTenants {
		t.Fatalf("table tracks %d tenants after %d distinct keys, bound is %d", n, tenants, maxTenants)
	}
	if n := table.len(); n < maxTenants/2 {
		t.Fatalf("table tracks only %d tenants; expected it near the %d bound", n, maxTenants)
	}
}

// TestBucketTableConcurrentTenantChurn runs the 2M-tenant workload from
// many goroutines to exercise the shard locking under the race detector.
func TestBucketTableConcurrentTenantChurn(t *testing.T) {
	perWorker := 50_000
	if testing.Short() {
		perWorker = 5_000
	}
	const workers = 8
	table := newBucketTable(1, 2, 2048, time.Now)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				table.allow(fmt.Sprintf("w%d-t%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	if n := table.len(); n > 2048 {
		t.Fatalf("table tracks %d tenants, bound is 2048", n)
	}
}

// TestEvictionPrefersFullBuckets pins the lossless-eviction rule: a shard
// under pressure drops a full bucket (recreating it later grants exactly
// the same full burst) rather than one holding rate-limit debt.
func TestEvictionPrefersFullBuckets(t *testing.T) {
	clk := newFakeClock()
	const rate, burst = 10.0, 4.0
	sh := &bucketShard{buckets: map[string]*tokenBucket{
		"drained-1": {tokens: 0, last: clk.Now()},
		"drained-2": {tokens: 1.5, last: clk.Now()},
		"full":      {tokens: burst, last: clk.Now()},
	}}
	sh.evictLocked(clk.Now(), rate, burst)
	if _, ok := sh.buckets["full"]; ok {
		t.Fatalf("full bucket survived eviction; victims: %v", sh.buckets)
	}
	for _, keep := range []string{"drained-1", "drained-2"} {
		if _, ok := sh.buckets[keep]; !ok {
			t.Fatalf("drained bucket %s evicted while a full one existed", keep)
		}
	}
}

// TestEvictionFallsBackToFullestBucket: with no full bucket in reach the
// shard evicts the fullest candidate — the one whose tenant loses the
// least accumulated debt.
func TestEvictionFallsBackToFullestBucket(t *testing.T) {
	clk := newFakeClock()
	sh := &bucketShard{buckets: map[string]*tokenBucket{
		"empty":  {tokens: 0, last: clk.Now()},
		"fuller": {tokens: 2, last: clk.Now()},
	}}
	sh.evictLocked(clk.Now(), 10, 4)
	if _, ok := sh.buckets["fuller"]; ok {
		t.Fatalf("fullest bucket survived; remaining: %v", sh.buckets)
	}
	if _, ok := sh.buckets["empty"]; !ok {
		t.Fatal("emptiest bucket evicted; that grants its tenant a fresh burst of debt relief")
	}
}

// TestAdmissionConfigValidation pins the config surface.
func TestAdmissionConfigValidation(t *testing.T) {
	bad := []AdmissionConfig{
		{Rate: -1},
		{Rate: 1, Burst: -2},
		{Rate: 5, Burst: 0.5},
		{MaxQueue: -1},
		{MaxTenants: -1},
		{RetryAfter: -time.Second},
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	def := AdmissionConfig{Rate: 2}.withDefaults()
	if def.Burst != 2 {
		t.Errorf("default burst = %v, want rate (2)", def.Burst)
	}
	if def.MaxTenants != 1<<16 || def.RetryAfter != time.Second || def.Now == nil {
		t.Errorf("defaults not filled: %+v", def)
	}
	if err := def.validate(); err != nil {
		t.Errorf("defaulted config invalid: %v", err)
	}
	frac := AdmissionConfig{Rate: 0.25}.withDefaults()
	if frac.Burst != 1 {
		t.Errorf("sub-1 rate burst = %v, want floor of 1", frac.Burst)
	}
}
