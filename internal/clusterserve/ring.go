package clusterserve

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per replica when Config.VNodes
// is zero. 128 points per peer keeps the max/min shard-load ratio tight
// (the ring property suite pins the bound) at negligible memory cost.
const DefaultVNodes = 128

// FNV-1a 64-bit parameters. The hash is inlined rather than taken from
// hash/fnv so ring lookups stay allocation-free on the request path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv64a hashes s with 64-bit FNV-1a.
func fnv64a(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// mix64 finalizes a hash with full avalanche (the MurmurHash3 fmix64
// constants). Raw FNV-1a folds each byte with one multiply, so strings
// differing only in a trailing digit — exactly the shape of virtual-node
// names — land within ~2^44 of each other on the 2^64 circle and cluster
// into a handful of arcs. The finalizer spreads them uniformly, which is
// what the ring's balance bound rests on.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringHash positions a string on the hash circle.
func ringHash(s string) uint64 { return mix64(fnv64a(s)) }

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the index of the replica that owns the arc ending there.
type ringPoint struct {
	hash uint64
	peer uint32
}

// Ring is an immutable consistent-hash ring over replica IDs. Every
// replica projects VNodes points onto the 64-bit circle; a key belongs to
// the replica owning the first point at or clockwise of the key's hash.
// Immutability is what makes routing loop-free: all replicas built from
// the same peer set compute identical owners, so one forwarding hop
// always suffices. Membership changes build a new ring (With / Without),
// moving only the keys adjacent to the changed replica's points.
type Ring struct {
	peers  []string // sorted, unique replica IDs
	vnodes int
	points []ringPoint // sorted by (hash, peer)
}

// NewRing builds a ring over the given replica IDs. IDs must be non-empty
// and unique; vnodes of 0 selects DefaultVNodes.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("clusterserve: vnodes must be positive, got %d", vnodes)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("clusterserve: ring needs at least one replica")
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for i, p := range sorted {
		if p == "" {
			return nil, fmt.Errorf("clusterserve: empty replica ID")
		}
		if i > 0 && sorted[i-1] == p {
			return nil, fmt.Errorf("clusterserve: duplicate replica ID %q", p)
		}
	}
	r := &Ring{
		peers:  sorted,
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for pi, p := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(p + "#" + strconv.Itoa(v)),
				peer: uint32(pi),
			})
		}
	}
	// Tie-break equal hashes by peer index so rings built from the same
	// membership sort identically regardless of insertion order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// Lookup returns the replica ID owning key. It is total (every key maps
// to a member) and deterministic; the hot path allocates nothing.
func (r *Ring) Lookup(key string) string {
	h := ringHash(key)
	// First point with hash >= h, wrapping to the start of the circle.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return r.peers[r.points[lo].peer]
}

// Successors appends to dst the first n distinct replicas owning key's
// arc and the arcs clockwise of it — the owner first, then the failover
// candidates in ring order. The hedged forwarding path walks this list, so
// like Lookup it must not allocate: callers pass a reused buffer.
func (r *Ring) Successors(key string, n int, dst []string) []string {
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := ringHash(key)
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := 0; i < len(r.points) && n > 0; i++ {
		p := r.peers[r.points[(lo+i)%len(r.points)].peer]
		seen := false
		for _, d := range dst {
			if d == p {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, p)
			n--
		}
	}
	return dst
}

// Peers returns the sorted replica IDs (a copy).
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// VNodes returns the virtual-node count per replica.
func (r *Ring) VNodes() int { return r.vnodes }

// Contains reports whether id is a ring member.
func (r *Ring) Contains(id string) bool {
	i := sort.SearchStrings(r.peers, id)
	return i < len(r.peers) && r.peers[i] == id
}

// With returns a new ring with peer joined. Keys that change owner move
// only onto the new peer — the minimal-movement property the join/leave
// suite pins.
func (r *Ring) With(peer string) (*Ring, error) {
	if r.Contains(peer) {
		return nil, fmt.Errorf("clusterserve: replica %q already in ring", peer)
	}
	return NewRing(append(r.Peers(), peer), r.vnodes)
}

// Without returns a new ring with peer removed. Keys that change owner
// move only off the removed peer.
func (r *Ring) Without(peer string) (*Ring, error) {
	if !r.Contains(peer) {
		return nil, fmt.Errorf("clusterserve: replica %q not in ring", peer)
	}
	if len(r.peers) == 1 {
		return nil, fmt.Errorf("clusterserve: cannot remove the last replica %q", peer)
	}
	rest := make([]string, 0, len(r.peers)-1)
	for _, p := range r.peers {
		if p != peer {
			rest = append(rest, p)
		}
	}
	return NewRing(rest, r.vnodes)
}
