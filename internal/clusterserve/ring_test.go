package clusterserve

import (
	"fmt"
	"math/rand"
	"testing"
)

// seedPeers names npeers replicas deterministically for one seed.
func seedPeers(seed, npeers int) []string {
	peers := make([]string, npeers)
	for i := range peers {
		peers[i] = fmt.Sprintf("replica-%d-%d", seed, i)
	}
	return peers
}

// seedKeys draws n pseudo-random computation-key-shaped strings.
func seedKeys(rng *rand.Rand, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cfg=%08x/m=m%d/p=%d:%d", rng.Uint32(), rng.Intn(4), rng.Intn(512), rng.Intn(512)+512)
	}
	return keys
}

// TestRingBalanceAcross200Seeds pins the distribution property: with 128
// virtual nodes, the busiest shard never carries more than twice the
// quietest, across 200 independently seeded peer sets and key sets. The
// inputs are seed-derived, so this bound is deterministic once green.
func TestRingBalanceAcross200Seeds(t *testing.T) {
	const keysPerSeed = 5000
	worst := 0.0
	for seed := 0; seed < 200; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		npeers := 2 + rng.Intn(7) // 2..8 replicas
		peers := seedPeers(seed, npeers)
		ring, err := NewRing(peers, DefaultVNodes)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		counts := map[string]int{}
		for _, k := range seedKeys(rng, keysPerSeed) {
			counts[ring.Lookup(k)]++
		}
		minLoad, maxLoad := keysPerSeed, 0
		for _, p := range peers {
			c := counts[p]
			if c < minLoad {
				minLoad = c
			}
			if c > maxLoad {
				maxLoad = c
			}
		}
		if minLoad == 0 {
			t.Fatalf("seed %d: replica with zero load among %d peers: %v", seed, npeers, counts)
		}
		ratio := float64(maxLoad) / float64(minLoad)
		if ratio > worst {
			worst = ratio
		}
		if ratio > 2.0 {
			t.Errorf("seed %d: max/min shard load ratio %.2f > 2.0 (%d peers, loads %v)", seed, ratio, npeers, counts)
		}
	}
	t.Logf("worst max/min shard-load ratio over 200 seeds: %.2f", worst)
}

// TestRingJoinMovesKeysOnlyOntoNewPeer pins minimal movement on join: a
// key either keeps its owner or moves to the joining replica — never
// between incumbents — and the moved fraction tracks 1/(n+1).
func TestRingJoinMovesKeysOnlyOntoNewPeer(t *testing.T) {
	const nKeys = 5000
	for seed := 0; seed < 50; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		npeers := 2 + rng.Intn(6)
		ring, err := NewRing(seedPeers(seed, npeers), DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		joiner := fmt.Sprintf("replica-%d-join", seed)
		grown, err := ring.With(joiner)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range seedKeys(rng, nKeys) {
			before, after := ring.Lookup(k), grown.Lookup(k)
			if before == after {
				continue
			}
			moved++
			if after != joiner {
				t.Fatalf("seed %d: key %q moved %s -> %s, not onto the joiner %s", seed, k, before, after, joiner)
			}
		}
		ideal := float64(nKeys) / float64(npeers+1)
		if f := float64(moved); f < 0.2*ideal || f > 2.5*ideal {
			t.Errorf("seed %d: join moved %d keys, expected near %.0f (1/(n+1) of %d)", seed, moved, ideal, nKeys)
		}
	}
}

// TestRingLeaveMovesKeysOnlyOffRemovedPeer pins minimal movement on
// leave: keys not owned by the removed replica keep their owner.
func TestRingLeaveMovesKeysOnlyOffRemovedPeer(t *testing.T) {
	const nKeys = 5000
	for seed := 0; seed < 50; seed++ {
		rng := rand.New(rand.NewSource(int64(2000 + seed)))
		npeers := 2 + rng.Intn(6)
		peers := seedPeers(seed, npeers)
		ring, err := NewRing(peers, DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		removed := peers[rng.Intn(npeers)]
		shrunk, err := ring.Without(removed)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range seedKeys(rng, nKeys) {
			before, after := ring.Lookup(k), shrunk.Lookup(k)
			if before != removed && after != before {
				t.Fatalf("seed %d: key %q moved %s -> %s though %s left", seed, k, before, after, removed)
			}
			if before == removed {
				moved++
				if after == removed {
					t.Fatalf("seed %d: key %q still routed to removed replica %s", seed, k, removed)
				}
			}
		}
		ideal := float64(nKeys) / float64(npeers)
		if f := float64(moved); f < 0.2*ideal || f > 2.5*ideal {
			t.Errorf("seed %d: leave moved %d keys, expected near %.0f (1/n of %d)", seed, moved, ideal, nKeys)
		}
	}
}

// TestRingIndependentOfConstructionOrder: rings built from the same
// membership in any order route identically — the property that makes
// forwarding loop-free when every node builds its own ring.
func TestRingIndependentOfConstructionOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	peers := seedPeers(7, 6)
	a, err := NewRing(peers, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]string(nil), peers...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b, err := NewRing(shuffled, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range seedKeys(rng, 2000) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %q routes to %s vs %s depending on construction order", k, a.Lookup(k), b.Lookup(k))
		}
	}
}

// TestRingConstructionErrors pins the validation surface.
func TestRingConstructionErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty peer set accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate peer accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty peer ID accepted")
	}
	if _, err := NewRing([]string{"a"}, -1); err == nil {
		t.Error("negative vnodes accepted")
	}
	ring, err := NewRing([]string{"a", "b"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ring.With("a"); err == nil {
		t.Error("joining an existing member accepted")
	}
	if _, err := ring.Without("c"); err == nil {
		t.Error("removing a non-member accepted")
	}
	solo, err := ring.Without("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solo.Without("a"); err == nil {
		t.Error("removing the last member accepted")
	}
	if got := solo.Lookup("anything"); got != "a" {
		t.Errorf("single-member ring routed to %q", got)
	}
}

// TestRingChurnConvergesToFreshConstruction pins the history-independence
// property the self-healing prober leans on: a ring reached through any
// sequence of With/Without churn routes identically to a ring freshly
// constructed from the surviving membership. Probers on different
// replicas take different paths through the same outages; this is why
// their active rings still agree.
func TestRingChurnConvergesToFreshConstruction(t *testing.T) {
	const pool = 8
	for seed := 0; seed < 50; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		peers := seedPeers(seed, pool)
		keys := seedKeys(rng, 500)

		ring, err := NewRing(peers, DefaultVNodes)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in := make(map[string]bool, pool)
		for _, p := range peers {
			in[p] = true
		}
		members := func() []string {
			var out []string
			for _, p := range peers {
				if in[p] {
					out = append(out, p)
				}
			}
			return out
		}

		for step := 0; step < 40; step++ {
			p := peers[rng.Intn(pool)]
			if in[p] {
				if len(members()) == 1 {
					continue // Without refuses to empty the ring
				}
				ring, err = ring.Without(p)
			} else {
				ring, err = ring.With(p)
			}
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			in[p] = !in[p]
		}

		fresh, err := NewRing(members(), DefaultVNodes)
		if err != nil {
			t.Fatalf("seed %d: fresh construction: %v", seed, err)
		}
		if got, want := fmt.Sprint(ring.Peers()), fmt.Sprint(fresh.Peers()); got != want {
			t.Fatalf("seed %d: churned membership %v != fresh %v", seed, got, want)
		}
		for _, k := range keys {
			if g, w := ring.Lookup(k), fresh.Lookup(k); g != w {
				t.Fatalf("seed %d: key %q owned by %q after churn, %q fresh", seed, k, g, w)
			}
			gs := ring.Successors(k, 3, nil)
			ws := fresh.Successors(k, 3, nil)
			if fmt.Sprint(gs) != fmt.Sprint(ws) {
				t.Fatalf("seed %d: key %q successors %v after churn, %v fresh", seed, k, gs, ws)
			}
		}
	}
}
