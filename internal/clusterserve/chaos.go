package clusterserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"time"

	"fairco2/internal/attrserver"
	"fairco2/internal/metrics"
	"fairco2/internal/resilience/faultserver"
	"fairco2/internal/schedule"
)

// This file is the chaos harness: RunChaos drives an in-process fleet
// through a scripted fault timeline — kill one replica mid-load, latency-
// spike another, restart the victim — while closed-loop query load and a
// sequential commit stream keep running. It then waits for the cluster to
// converge and differentially compares every replica's answers against a
// single-process oracle that applied the same commits. The chaos test
// suite asserts on the report under -race; cmd/cluster-chaos renders it
// for results/cluster_chaos.txt.

// ChaosConfig scripts one chaos run. Zero values select the defaults.
type ChaosConfig struct {
	// Replicas is the fleet size (default 3).
	Replicas int
	// Slices is the schedule size (default 16).
	Slices int
	// Duration is how long the query load runs (default 3s).
	Duration time.Duration
	// Workers is the load concurrency (default 6).
	Workers int
	// Victim is the replica killed mid-load and later restarted
	// (default 1).
	Victim int
	// KillAt and RestartAt place the kill and the restart on the load
	// timeline (defaults Duration/4 and Duration/2).
	KillAt    time.Duration
	RestartAt time.Duration
	// Flap, when >= 0, names a replica whose fault gate gets a sticky
	// latency spike from RestartAt until RestartAt+Duration/6, long
	// enough past the probe timeout that probers evict and then readmit
	// it (default 2; -1 disables).
	Flap int
	// FlapDelay is the injected latency (default 4x the probe timeout).
	FlapDelay time.Duration
	// CommitEvery paces the sequential commit stream (default 25ms).
	CommitEvery time.Duration
	// Probe and Hedge tune the self-healing layer; the defaults are a
	// fast probe clock (40ms interval) so eviction and rejoin fit the
	// run.
	Probe ProbeConfig
	Hedge HedgeConfig
	// Admission applies at every replica (default: 2000 req/s per
	// tenant, burst 200 — high enough that shed stays a budget, not a
	// wall).
	Admission AdmissionConfig
	// ConvergeTimeout bounds the post-load wait for full recovery
	// (default 15s).
	ConvergeTimeout time.Duration
	// Logf, when set, narrates the timeline (e.g. t.Logf or log.Printf).
	Logf func(format string, args ...any)
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Replicas < 2 {
		c.Replicas = 3
	}
	if c.Slices == 0 {
		c.Slices = 16
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Workers < 1 {
		c.Workers = 6
	}
	if c.Victim <= 0 || c.Victim >= c.Replicas {
		// Replica 0 is not selectable: zero is the unset value. The load
		// and differential logic do not care which replica dies, so the
		// restriction costs nothing.
		c.Victim = 1 % c.Replicas
	}
	if c.KillAt <= 0 {
		c.KillAt = c.Duration / 4
	}
	if c.RestartAt <= 0 {
		c.RestartAt = c.Duration / 2
	}
	if c.Flap == 0 {
		c.Flap = 2
	}
	if c.Flap >= c.Replicas || c.Flap == c.Victim {
		c.Flap = -1
	}
	if c.CommitEvery <= 0 {
		c.CommitEvery = 25 * time.Millisecond
	}
	if c.Probe.Interval == 0 {
		c.Probe.Interval = 40 * time.Millisecond
	}
	c.Probe = c.Probe.withDefaults()
	if c.FlapDelay <= 0 {
		c.FlapDelay = 4 * c.Probe.Timeout
	}
	if c.Admission.Rate == 0 {
		c.Admission.Rate = 2000
		c.Admission.Burst = 200
	}
	if c.ConvergeTimeout <= 0 {
		c.ConvergeTimeout = 15 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ChaosReport is the outcome of one chaos run.
type ChaosReport struct {
	Config ChaosConfig `json:"-"`
	// Load is the closed-loop query load summary. Errors must be zero:
	// every request either completed or was shed-and-retried.
	Load LoadStats
	// Commits is how many sequential commits landed; CommitErrors counts
	// commit attempts that failed outright (must be zero).
	Commits      int
	CommitErrors int
	// Evicted reports whether every surviving replica marked the victim
	// Down, and EvictedIn how long after the kill the last one did.
	Evicted   bool
	EvictedIn time.Duration
	// Converged reports whether, after the restart, every replica
	// reached the same schedule fingerprint with all peers Up, within
	// ConvergeTimeout of load end; ConvergedIn is the wait.
	Converged   bool
	ConvergedIn time.Duration
	// SyncReplayed / Hedges / Failovers / Transitions are the fleet-wide
	// self-healing counters after the run.
	SyncReplayed float64
	Hedges       float64
	Failovers    float64
	Transitions  float64
	// Compared counts differential queries checked against the oracle;
	// Mismatches lists every deviation (must be empty).
	Compared   int
	Mismatches []string
}

// Passed reports whether the run met the chaos acceptance bar: no lost
// requests beyond shed-and-retry, eviction observed, full convergence,
// and bitwise-identical answers.
func (r *ChaosReport) Passed() bool {
	return r.Load.Errors == 0 && r.CommitErrors == 0 &&
		r.Evicted && r.Converged && len(r.Mismatches) == 0
}

// String renders the report for results/cluster_chaos.txt.
func (r *ChaosReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos run: %d replicas, victim %d, load %v x %d workers\n",
		r.Config.Replicas, r.Config.Victim, r.Config.Duration, r.Config.Workers)
	fmt.Fprintf(&b, "  queries: %d done, %d shed-and-retried, %d errors (%.0f req/s)\n",
		r.Load.Done, r.Load.Shed, r.Load.Errors, r.Load.Throughput())
	fmt.Fprintf(&b, "  commits: %d landed, %d failed\n", r.Commits, r.CommitErrors)
	fmt.Fprintf(&b, "  eviction: observed=%v in %v after kill\n", r.Evicted, r.EvictedIn.Round(time.Millisecond))
	fmt.Fprintf(&b, "  convergence: reached=%v in %v after load end\n", r.Converged, r.ConvergedIn.Round(time.Millisecond))
	fmt.Fprintf(&b, "  self-healing: %.0f transitions, %.0f hedges, %.0f failovers, %.0f commits replayed\n",
		r.Transitions, r.Hedges, r.Failovers, r.SyncReplayed)
	fmt.Fprintf(&b, "  differential: %d queries vs oracle, %d mismatches\n", r.Compared, len(r.Mismatches))
	for _, m := range r.Mismatches {
		fmt.Fprintf(&b, "    MISMATCH %s\n", m)
	}
	fmt.Fprintf(&b, "  verdict: passed=%v\n", r.Passed())
	return b.String()
}

var chaosMethods = []string{
	attrserver.MethodGroundTruth,
	attrserver.MethodRUP,
	attrserver.MethodDemandProportional,
	attrserver.MethodFairCO2,
}

// RunChaos executes the scripted fault timeline against a fresh fleet and
// returns the report. The error covers only harness failures (a replica
// that cannot restart); scenario outcomes land in the report.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	rep := &ChaosReport{Config: cfg}
	sched := FleetSchedule(cfg.Slices)

	f, err := StartFleet(FleetConfig{
		Replicas:  cfg.Replicas,
		Schedule:  sched,
		Admission: cfg.Admission,
		SelfHeal:  true,
		Probe:     cfg.Probe,
		Hedge:     cfg.Hedge,
	})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// Load enters only through survivors: a real front-end load balancer
	// stops sending to a dead backend; what the harness must prove is
	// that requests routed *through* live replicas to the dead owner's
	// ring segment still complete.
	entries := make([]string, 0, cfg.Replicas-1)
	for i, u := range f.URLs {
		if i != cfg.Victim {
			entries = append(entries, u)
		}
	}
	periods := DistinctPeriods(cfg.Slices, 24)
	victimID := f.IDs[cfg.Victim]

	// Sequential commit stream: one goroutine, each commit acknowledged
	// before the next is issued, so the per-tenant ordering the oracle
	// replays is exactly the issue order.
	commitStop := make(chan struct{})
	commitDone := make(chan struct{})
	var commitBodies [][]byte
	go func() {
		defer close(commitDone)
		t := time.NewTicker(cfg.CommitEvery)
		defer t.Stop()
		for i := 0; ; i++ {
			select {
			case <-commitStop:
				return
			case <-t.C:
			}
			body, err := json.Marshal(map[string]any{
				"tenant": i % 4,
				"cores":  1 + (i*3)%8,
				"commit": true,
			})
			if err != nil {
				rep.CommitErrors++
				continue
			}
			if chaosCommit(entries[i%len(entries)], body) {
				commitBodies = append(commitBodies, body)
				rep.Commits++
			} else {
				rep.CommitErrors++
			}
		}
	}()

	// Fault timeline.
	timelineDone := make(chan struct{})
	var restartErr error
	go func() {
		defer close(timelineDone)
		time.Sleep(cfg.KillAt)
		cfg.Logf("chaos: killing replica %s", victimID)
		f.CloseReplica(cfg.Victim)
		killed := time.Now()

		// Wait for every survivor's prober to evict the victim.
		evictBound := cfg.RestartAt - cfg.KillAt
		for time.Since(killed) < evictBound {
			all := true
			for i, n := range f.Nodes {
				if i == cfg.Victim {
					continue
				}
				if n.MemberStates()[victimID] != MemberDown {
					all = false
					break
				}
			}
			if all {
				rep.Evicted = true
				rep.EvictedIn = time.Since(killed)
				cfg.Logf("chaos: victim evicted everywhere in %v", rep.EvictedIn)
				break
			}
			time.Sleep(2 * time.Millisecond)
		}

		if cfg.Flap >= 0 {
			cfg.Logf("chaos: latency-spiking replica %s by %v", f.IDs[cfg.Flap], cfg.FlapDelay)
			f.Gates[cfg.Flap].Program(faultserver.Step{Delay: cfg.FlapDelay, Sticky: true})
		}
		if rest := cfg.RestartAt - cfg.KillAt - time.Since(killed); rest > 0 {
			time.Sleep(rest)
		}
		cfg.Logf("chaos: restarting replica %s", victimID)
		if err := f.RestartReplica(cfg.Victim); err != nil {
			restartErr = err
			return
		}
		if cfg.Flap >= 0 {
			time.Sleep(cfg.Duration / 6)
			f.Gates[cfg.Flap].Clear()
			cfg.Logf("chaos: latency spike cleared on replica %s", f.IDs[cfg.Flap])
		}
	}()

	rep.Load = RunLoad(LoadConfig{
		Entries:  entries,
		Workers:  cfg.Workers,
		Duration: cfg.Duration,
		Path: func(seq int) string {
			return "/v1/attribution?method=" + chaosMethods[seq%len(chaosMethods)] +
				"&period=" + periods[seq%len(periods)]
		},
		Header: func(seq int) http.Header {
			h := http.Header{}
			h.Set(HeaderTenant, "load-"+strconv.Itoa(seq%4))
			return h
		},
	})
	close(commitStop)
	<-commitDone
	<-timelineDone
	if restartErr != nil {
		return rep, restartErr
	}

	// Convergence: every replica at the same fingerprint, every prober
	// seeing every peer Up.
	waitStart := time.Now()
	for time.Since(waitStart) < cfg.ConvergeTimeout {
		if chaosConverged(f) {
			rep.Converged = true
			rep.ConvergedIn = time.Since(waitStart)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cfg.Logf("chaos: converged=%v in %v", rep.Converged, rep.ConvergedIn)

	rep.SyncReplayed = f.FamilyTotal("fairco2_cluster_sync_replayed_total")
	rep.Hedges = f.FamilyTotal("fairco2_cluster_hedges_total")
	rep.Failovers = f.FamilyTotal("fairco2_cluster_failovers_total")
	rep.Transitions = f.FamilyTotal("fairco2_cluster_transitions_total")

	// Differential pass: a single-process oracle applies the same commit
	// sequence, then every replica must answer bitwise-identically.
	oracle, err := chaosOracle(sched, commitBodies)
	if err != nil {
		return rep, err
	}
	defer oracle.Close()
	for qi := 0; qi < len(chaosMethods)*len(periods); qi++ {
		path := "/v1/attribution?method=" + chaosMethods[qi%len(chaosMethods)] +
			"&period=" + periods[qi%len(periods)]
		want, werr := chaosFetch(oracle.URL + path)
		for i := range f.URLs {
			got, gerr := chaosFetch(f.URLs[i] + path)
			rep.Compared++
			if gerr != nil || werr != nil {
				rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("%s replica %d: fetch: %v / oracle: %v", path, i, gerr, werr))
				continue
			}
			diffJSON(fmt.Sprintf("%s replica %d", path, i), got, want, &rep.Mismatches)
		}
	}
	return rep, nil
}

// chaosCommit posts one commit, honoring 429 back-pressure, and reports
// whether it landed with a 200.
func chaosCommit(entry string, body []byte) bool {
	for {
		resp, err := http.Post(entry+"/v1/demand/delta", "application/json", bytes.NewReader(body))
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		wait := retryWait(resp, 2*time.Millisecond)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return true
		case http.StatusTooManyRequests:
			time.Sleep(wait)
		default:
			return false
		}
	}
}

// chaosConverged checks fleet-wide recovery: identical schedule
// fingerprints and all-Up membership everywhere.
func chaosConverged(f *Fleet) bool {
	fp := f.Srvs[0].Fingerprint()
	for _, s := range f.Srvs[1:] {
		if s.Fingerprint() != fp {
			return false
		}
	}
	for _, n := range f.Nodes {
		for _, st := range n.MemberStates() {
			if st != MemberUp {
				return false
			}
		}
	}
	return true
}

// chaosOracle builds the single-process ground truth: a fresh attrserver
// on the fleet's base schedule with the recorded commit sequence applied
// in issue order.
func chaosOracle(sched *schedule.Schedule, bodies [][]byte) (*httptest.Server, error) {
	cfg := attrserver.DefaultConfig()
	cfg.Schedule = sched
	cfg.Budget = 1e6
	cfg.Parallelism = 1
	cfg.BatchWindow = 0
	cfg.Replica = "oracle"
	srv, err := attrserver.New(cfg, metrics.NewRegistry())
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	for i, b := range bodies {
		resp, err := http.Post(ts.URL+"/v1/demand/delta", "application/json", bytes.NewReader(b))
		if err != nil {
			ts.Close()
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			ts.Close()
			return nil, fmt.Errorf("clusterserve: oracle commit %d: status %d", i, resp.StatusCode)
		}
	}
	return ts, nil
}

// chaosFetch GETs url and decodes the JSON body with the volatile
// computed_at field stripped.
func chaosFetch(url string) (map[string]any, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	out := map[string]any{}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	delete(out, "computed_at")
	return out, nil
}

// diffJSON deep-compares decoded JSON with exact Float64bits equality on
// numbers, appending a line per deviation. encoding/json round-trips
// float64 bitwise, so any deviation is a real attribution divergence.
func diffJSON(path string, got, want any, out *[]string) {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok || len(g) != len(w) {
			*out = append(*out, fmt.Sprintf("%s: object shape differs", path))
			return
		}
		ks := make([]string, 0, len(w))
		for k := range w {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			gv, ok := g[k]
			if !ok {
				*out = append(*out, fmt.Sprintf("%s: missing key %q", path, k))
				continue
			}
			diffJSON(path+"."+k, gv, w[k], out)
		}
	case []any:
		g, ok := got.([]any)
		if !ok || len(g) != len(w) {
			*out = append(*out, fmt.Sprintf("%s: array shape differs", path))
			return
		}
		for i := range w {
			diffJSON(fmt.Sprintf("%s[%d]", path, i), g[i], w[i], out)
		}
	case float64:
		g, ok := got.(float64)
		if !ok || math.Float64bits(g) != math.Float64bits(w) {
			*out = append(*out, fmt.Sprintf("%s: %v != oracle %v", path, got, w))
		}
	default:
		if got != want {
			*out = append(*out, fmt.Sprintf("%s: %v != oracle %v", path, got, want))
		}
	}
}
