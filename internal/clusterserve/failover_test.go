package clusterserve

import (
	"net/http"
	"testing"
	"time"

	"fairco2/internal/resilience/faultserver"
)

// successorIdx resolves the query path's full candidate walk (owner,
// then hedge successors) into fleet indices.
func successorIdx(t *testing.T, f *Fleet, path string) []int {
	t.Helper()
	key := queryKey(t, f, path)
	cands := f.Nodes[0].Ring().Successors(key, 3, nil)
	idx := make([]int, len(cands))
	for i, id := range cands {
		found := false
		for j, rid := range f.IDs {
			if rid == id {
				idx[i], found = j, true
			}
		}
		if !found {
			t.Fatalf("candidate %q not a fleet member", id)
		}
	}
	return idx
}

// TestHedgedReadOnSlowOwner: an owner that overruns the latency budget
// gets raced — the entry replica hedges the read to the next ring
// successor and the successor's answer streams back, well before the
// owner's would have.
func TestHedgedReadOnSlowOwner(t *testing.T) {
	budget := 30 * time.Millisecond
	f := startTestFleet(t, FleetConfig{Replicas: 3, Hedge: HedgeConfig{LatencyBudget: budget}})

	path := "/v1/attribution?method=rup&period=0:8"
	cands := successorIdx(t, f, path)
	owner, healthy, entry := cands[0], cands[1], cands[2]

	// The owner answers, eventually — far past the budget.
	f.Gates[owner].Program(faultserver.Step{Delay: 20 * budget, Sticky: true})

	start := time.Now()
	resp, body := get(t, f.URLs[entry]+path, nil)
	took := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged read: status %d: %s", resp.StatusCode, body)
	}
	if took >= 20*budget {
		t.Errorf("hedged read took %v — it waited out the slow owner instead of racing a successor", took)
	}
	if got := f.Nodes[entry].inst.Hedges.Value(); got < 1 {
		t.Errorf("hedges counter = %v, want >= 1", got)
	}
	if got := series(f, "fairco2_cluster_forwards_total", f.IDs[entry], f.IDs[healthy]); got < 1 {
		t.Errorf("no forward recorded to the winning successor %s", f.IDs[healthy])
	}
}

// TestBreakerFastFailsDeadOwner: with the owner dark, reads fail over to
// a successor every time; after FailureThreshold consecutive connection
// errors the entry replica's breaker for the owner opens, so later
// requests skip the dead peer without paying the connection attempt.
func TestBreakerFastFailsDeadOwner(t *testing.T) {
	f := startTestFleet(t, FleetConfig{Replicas: 3})

	path := "/v1/attribution?method=rup&period=0:8"
	cands := successorIdx(t, f, path)
	owner, healthy, entry := cands[0], cands[1], cands[2]

	f.CloseReplica(owner)

	for i := 0; i < 5; i++ {
		resp, body := get(t, f.URLs[entry]+path, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d with dead owner: status %d: %s", i, resp.StatusCode, body)
		}
	}

	if err := f.Nodes[entry].breakers[f.IDs[owner]].Allow(); err == nil {
		t.Error("breaker for the dead owner is still closed after repeated connection failures")
	}
	if got := f.Nodes[entry].inst.Failovers.Value(); got < 5 {
		t.Errorf("failovers counter = %v, want >= 5 (one per re-routed read)", got)
	}
	if got := series(f, "fairco2_cluster_forwards_total", f.IDs[entry], f.IDs[healthy]); got < 5 {
		t.Errorf("forwards to surviving successor = %v, want >= 5", got)
	}
}
