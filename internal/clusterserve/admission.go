package clusterserve

import (
	"fmt"
	"sync"
	"time"
)

// AdmissionConfig bounds what a node accepts before the expensive layers
// see it. Zero values disable the corresponding control, so an empty
// config admits everything.
type AdmissionConfig struct {
	// Rate is the sustained per-tenant request rate in tokens per second.
	// 0 disables per-tenant limiting.
	Rate float64
	// Burst is the token-bucket capacity — how many requests a tenant may
	// fire back-to-back (default: max(Rate, 1) when Rate is set).
	Burst float64
	// MaxTenants bounds the bucket table's memory across arbitrarily many
	// distinct tenant keys (default 65536). Eviction prefers full buckets,
	// which is lossless: a re-created bucket starts full, exactly like the
	// evicted one it replaces.
	MaxTenants int
	// MaxQueue bounds concurrently served locally-computed requests; the
	// excess sheds with 429 + Retry-After. 0 disables queue shedding.
	// Forwarded-in work counts (the owner does the computing); replicated
	// delta commits never shed, so replicas cannot diverge under load.
	MaxQueue int
	// RetryAfter is the client back-off hint attached to queue-depth sheds
	// (default 1s). Tenant-rate sheds compute their own exact hint from
	// the bucket deficit.
	RetryAfter time.Duration
	// Now overrides the clock, for deterministic tests.
	Now func() time.Time
}

// withDefaults fills the zero-valued knobs.
func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Rate > 0 && c.Burst == 0 {
		c.Burst = c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = 1 << 16
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

func (c AdmissionConfig) validate() error {
	switch {
	case c.Rate < 0:
		return fmt.Errorf("clusterserve: admission rate must be non-negative, got %v", c.Rate)
	case c.Burst < 0:
		return fmt.Errorf("clusterserve: admission burst must be non-negative, got %v", c.Burst)
	case c.Rate > 0 && c.Burst < 1:
		return fmt.Errorf("clusterserve: admission burst must be at least 1, got %v", c.Burst)
	case c.MaxTenants < 0, c.MaxQueue < 0:
		return fmt.Errorf("clusterserve: admission bounds must be non-negative")
	case c.RetryAfter < 0:
		return fmt.Errorf("clusterserve: retry-after must be non-negative, got %v", c.RetryAfter)
	}
	return nil
}

// tokenBucket is one tenant's refillable allowance. State is guarded by
// the owning shard's mutex.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// refill credits the elapsed time since the last touch at rate, capped at
// burst. A non-advancing (or rewound) clock credits nothing.
func (b *tokenBucket) refill(now time.Time, rate, burst float64) {
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += rate * dt.Seconds()
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
}

// bucketShards fixes the table's lock striping; tenant keys spread across
// shards by FNV so unrelated tenants rarely contend.
const bucketShards = 64

// evictScan caps how many candidates a full shard examines per eviction.
// Full buckets are preferred (lossless); otherwise the fullest scanned
// bucket goes, granting its tenant at most burst-minus-tokens slack once.
const evictScan = 8

// bucketTable is the sharded, memory-bounded map of per-tenant token
// buckets. It absorbs millions of distinct tenant keys within a fixed
// bucket budget.
type bucketTable struct {
	rate, burst float64
	shardMax    int
	now         func() time.Time
	shards      [bucketShards]bucketShard
}

type bucketShard struct {
	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

func newBucketTable(rate, burst float64, maxTenants int, now func() time.Time) *bucketTable {
	t := &bucketTable{
		rate:     rate,
		burst:    burst,
		shardMax: (maxTenants + bucketShards - 1) / bucketShards,
		now:      now,
	}
	if t.shardMax < 1 {
		t.shardMax = 1
	}
	for i := range t.shards {
		t.shards[i].buckets = map[string]*tokenBucket{}
	}
	return t
}

// allow takes one token from tenant's bucket. When the bucket is dry it
// returns false and how long until the next token accrues — the exact
// Retry-After for this tenant.
func (t *bucketTable) allow(tenant string) (bool, time.Duration) {
	sh := &t.shards[fnv64a(tenant)%bucketShards]
	now := t.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, ok := sh.buckets[tenant]
	if !ok {
		if len(sh.buckets) >= t.shardMax {
			sh.evictLocked(now, t.rate, t.burst)
		}
		b = &tokenBucket{tokens: t.burst, last: now}
		sh.buckets[tenant] = b
	} else {
		b.refill(now, t.rate, t.burst)
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / t.rate * float64(time.Second))
	return false, wait
}

// evictLocked drops one bucket to make room. It scans up to evictScan
// entries for a full bucket first — evicting one is lossless, since a
// future re-insert recreates it full — and falls back to the fullest
// candidate seen.
func (sh *bucketShard) evictLocked(now time.Time, rate, burst float64) {
	var victim string
	best := -1.0
	scanned := 0
	for tenant, b := range sh.buckets {
		b.refill(now, rate, burst)
		if b.tokens >= burst {
			delete(sh.buckets, tenant)
			return
		}
		if b.tokens > best {
			best, victim = b.tokens, tenant
		}
		if scanned++; scanned >= evictScan {
			break
		}
	}
	delete(sh.buckets, victim)
}

// len reports the tracked-tenant count across shards.
func (t *bucketTable) len() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += len(t.shards[i].buckets)
		t.shards[i].mu.Unlock()
	}
	return n
}
