package clusterserve

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fairco2/internal/attribution"
	"fairco2/internal/attrserver"
	"fairco2/internal/metrics"
	"fairco2/internal/resilience/faultserver"
	"fairco2/internal/schedule"
	"fairco2/internal/units"
)

// This file is the multi-replica load harness: StartFleet spins an
// in-process cluster (one attrserver + Node per replica, wired over
// httptest listeners, sharing one metrics registry), and RunLoad drives
// it with concurrent workers that honor 429 back-pressure. The load and
// differential test suites build on it, as does cmd/cluster-load, which
// records the replica-scaling curve for reproduce.sh.

// SyntheticMethod names the sleep-backed attribution method StartFleet
// registers when ServiceTime is set. A fixed service time makes replica
// scaling observable on any host: sleeping computations cost no CPU, so
// N replicas' admission capacity adds even on a single core.
const SyntheticMethod = "synthetic"

// syntheticMethod sleeps a fixed service time, then answers through the
// cheap demand-proportional method so responses stay well-formed.
type syntheticMethod struct {
	delay time.Duration
}

func (m syntheticMethod) Name() string { return SyntheticMethod }

func (m syntheticMethod) Attribute(s *schedule.Schedule, budget units.GramsCO2e) ([]float64, error) {
	time.Sleep(m.delay)
	return attribution.DemandProportional{}.Attribute(s, budget)
}

// FleetConfig parameterizes an in-process cluster.
type FleetConfig struct {
	// Replicas is the cluster size (required, >= 1).
	Replicas int
	// VNodes is forwarded to each node's ring (0 = DefaultVNodes).
	VNodes int
	// Schedule is served by every replica; nil selects FleetSchedule(64).
	Schedule *schedule.Schedule
	// Budget is the embodied budget (default 1e6 g).
	Budget units.GramsCO2e
	// Admission applies at every node's ingress.
	Admission AdmissionConfig
	// ServiceTime, when set, registers SyntheticMethod with this fixed
	// per-computation latency.
	ServiceTime time.Duration
	// SelfHeal starts each node's health prober once every listener is
	// live, and restarts it on RestartReplica.
	SelfHeal bool
	// Probe and Hedge tune the self-healing layer of every node.
	Probe ProbeConfig
	Hedge HedgeConfig
	// Server and Node, when set, tweak each replica's configs after the
	// harness defaults are applied.
	Server func(*attrserver.Config)
	Node   func(*Config)
}

// Fleet is a running in-process cluster. Replica IDs are "0".."R-1";
// URLs[i] is replica i's base URL.
type Fleet struct {
	Reg   *metrics.Registry
	IDs   []string
	URLs  []string
	Nodes []*Node
	Srvs  []*attrserver.Server
	// Gates are per-replica fault-injection gates sitting in front of
	// each node's handler — chaos scripts Program them to partition or
	// latency-spike a live replica in place.
	Gates []*faultserver.Server

	cfg     FleetConfig
	peers   map[string]string
	holders []*handlerHolder
	http    []*httptest.Server
}

// handlerHolder lets the httptest listeners exist (their addresses are
// needed for the peer map) before the node handlers that serve them, and
// lets RestartReplica swap a rebuilt handler in under live traffic.
type handlerHolder struct{ h atomic.Value }

func (hh *handlerHolder) set(h http.Handler) { hh.h.Store(&h) }

func (hh *handlerHolder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*hh.h.Load().(*http.Handler)).ServeHTTP(w, r)
}

// FleetSchedule is the harness default: a dense schedule with the given
// slice count and a handful of workloads, small enough that the delta
// engines build instantly but wide enough to enumerate thousands of
// distinct query periods.
func FleetSchedule(slices int) *schedule.Schedule {
	return &schedule.Schedule{
		Slices:        slices,
		SliceDuration: 1,
		Workloads: []schedule.Workload{
			{ID: 0, Cores: 4, Start: 0, Duration: slices},
			{ID: 1, Cores: 2, Start: 0, Duration: slices / 2},
			{ID: 2, Cores: 3, Start: slices / 4, Duration: slices / 2},
			{ID: 3, Cores: 1, Start: slices / 2, Duration: slices / 2},
		},
	}
}

// StartFleet builds and starts an in-process cluster. Close it when done.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("clusterserve: fleet needs at least one replica, got %d", cfg.Replicas)
	}
	if cfg.Schedule == nil {
		cfg.Schedule = FleetSchedule(64)
	}
	if cfg.Budget == 0 {
		cfg.Budget = 1e6
	}
	f := &Fleet{
		Reg:   metrics.NewRegistry(),
		cfg:   cfg,
		peers: make(map[string]string, cfg.Replicas),
	}
	for i := 0; i < cfg.Replicas; i++ {
		id := strconv.Itoa(i)
		holder := &handlerHolder{}
		ts := httptest.NewUnstartedServer(holder)
		url := "http://" + ts.Listener.Addr().String()
		f.IDs = append(f.IDs, id)
		f.URLs = append(f.URLs, url)
		f.holders = append(f.holders, holder)
		f.http = append(f.http, ts)
		f.peers[id] = url
	}
	for i := 0; i < cfg.Replicas; i++ {
		srv, node, err := f.buildReplica(i)
		if err != nil {
			f.Close()
			return nil, err
		}
		gate := faultserver.NewHandler(node.Handler())
		f.Srvs = append(f.Srvs, srv)
		f.Nodes = append(f.Nodes, node)
		f.Gates = append(f.Gates, gate)
		f.holders[i].set(gate)
		f.http[i].Start()
	}
	if cfg.SelfHeal {
		// Probers start only once every listener is live, so no replica
		// begins life falsely Down.
		for _, n := range f.Nodes {
			n.Start()
		}
	}
	return f, nil
}

// buildReplica constructs replica i's attrserver and node from the fleet
// config — used at startup and again by RestartReplica, so a restarted
// replica comes back with the original (stale) schedule and must catch up
// through the commit log.
func (f *Fleet) buildReplica(i int) (*attrserver.Server, *Node, error) {
	cfg := f.cfg
	scfg := attrserver.DefaultConfig()
	scfg.Schedule = cfg.Schedule
	scfg.Budget = cfg.Budget
	scfg.Parallelism = 1
	scfg.BatchWindow = 0
	scfg.Replica = f.IDs[i]
	if cfg.ServiceTime > 0 {
		scfg.Methods = map[string]attribution.Method{
			SyntheticMethod: syntheticMethod{delay: cfg.ServiceTime},
		}
	}
	if cfg.Server != nil {
		cfg.Server(&scfg)
	}
	srv, err := attrserver.New(scfg, f.Reg)
	if err != nil {
		return nil, nil, err
	}
	ncfg := Config{
		ReplicaID: f.IDs[i],
		Peers:     f.peers,
		VNodes:    cfg.VNodes,
		Server:    srv,
		Admission: cfg.Admission,
		Probe:     cfg.Probe,
		Hedge:     cfg.Hedge,
	}
	if cfg.Node != nil {
		cfg.Node(&ncfg)
	}
	node, err := New(ncfg, f.Reg)
	if err != nil {
		return nil, nil, err
	}
	return srv, node, nil
}

// Close stops every prober and shuts every replica's listener down.
func (f *Fleet) Close() {
	for _, n := range f.Nodes {
		n.Stop()
	}
	for _, ts := range f.http {
		ts.CloseClientConnections()
		ts.Close()
	}
}

// CloseReplica blacks out one replica — its prober halts and its listener
// closes — the kill fault. RestartReplica brings it back.
func (f *Fleet) CloseReplica(i int) {
	f.Nodes[i].Stop()
	f.http[i].CloseClientConnections()
	f.http[i].Close()
}

// RestartReplica rebuilds a previously closed replica at its original
// address: a fresh attrserver (stale schedule), a fresh node and fault
// gate swapped in under the same URL, and — under SelfHeal — a prober
// whose warmup replays the commits missed while dark.
func (f *Fleet) RestartReplica(i int) error {
	addr := strings.TrimPrefix(f.URLs[i], "http://")
	var (
		l   net.Listener
		err error
	)
	// The freed address can linger briefly after Close; retry with
	// backoff rather than flake.
	for wait := time.Millisecond; ; wait *= 2 {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if wait > time.Second {
			return fmt.Errorf("clusterserve: rebinding %s: %w", addr, err)
		}
		time.Sleep(wait)
	}
	srv, node, err := f.buildReplica(i)
	if err != nil {
		l.Close()
		return err
	}
	gate := faultserver.NewHandler(node.Handler())
	f.Srvs[i], f.Nodes[i], f.Gates[i] = srv, node, gate
	f.holders[i].set(gate)
	ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: f.holders[i]}}
	ts.Start()
	f.http[i] = ts
	if f.cfg.SelfHeal {
		node.Start()
	}
	return nil
}

// FamilyTotal sums every sample of a counter or gauge family across all
// label sets — e.g. FamilyTotal("fairco2_attrserver_computations_total")
// is the cluster-wide computation count.
func (f *Fleet) FamilyTotal(name string) float64 {
	total := 0.0
	for _, fam := range f.Reg.Gather() {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Samples {
			total += s.Value
		}
	}
	return total
}

// DistinctPeriods enumerates n distinct "start:end" period strings over a
// schedule with the given slice count, cycling window lengths so the key
// space mixes wide and narrow queries. It panics when the slice count
// cannot supply n distinct periods.
func DistinctPeriods(slices, n int) []string {
	out := make([]string, 0, n)
	for length := slices; length >= 1 && len(out) < n; length-- {
		for start := 0; start+length <= slices && len(out) < n; start++ {
			out = append(out, strconv.Itoa(start)+":"+strconv.Itoa(start+length))
		}
	}
	if len(out) < n {
		panic(fmt.Sprintf("clusterserve: only %d distinct periods exist for %d slices, need %d", len(out), slices, n))
	}
	return out
}

// LoadConfig drives RunLoad.
type LoadConfig struct {
	// Entries are the base URLs workers enter the cluster through,
	// assigned round-robin by worker index.
	Entries []string
	// Workers is the concurrency (required, >= 1).
	Workers int
	// Requests caps total successful requests; 0 means run until the
	// Duration deadline instead (one of the two must be set).
	Requests int
	// Duration bounds the run in fixed-duration mode.
	Duration time.Duration
	// Path yields the request path+query for the seq-th request.
	Path func(seq int) string
	// Header, when set, adds headers (e.g. the tenant identity) for the
	// seq-th request.
	Header func(seq int) http.Header
	// RetryWait is the back-off when a 429 carries no millisecond hint
	// (default 2ms).
	RetryWait time.Duration
	// Client issues the requests (default http.DefaultClient).
	Client *http.Client
}

// LoadStats summarizes one RunLoad.
type LoadStats struct {
	// Done counts requests that reached 200.
	Done int64
	// Shed counts 429 responses observed (each is retried).
	Shed int64
	// Errors counts transport failures and non-200/429 statuses.
	Errors int64
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
}

// Throughput is completed requests per second.
func (s LoadStats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Done) / s.Elapsed.Seconds()
}

// RunLoad fires requests from Workers concurrent workers until the
// request budget or deadline is spent. Workers honor 429 back-pressure:
// they sleep the shed response's Retry-After (millisecond form when
// present) and retry the same request, so offered load adapts to what
// admission control grants.
func RunLoad(cfg LoadConfig) LoadStats {
	if cfg.RetryWait == 0 {
		cfg.RetryWait = 2 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	var stats LoadStats
	var seq atomic.Int64
	start := time.Now()
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }

	var done, shed, errs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			entry := cfg.Entries[w%len(cfg.Entries)]
			for {
				i := seq.Add(1) - 1
				if cfg.Requests > 0 && i >= int64(cfg.Requests) {
					return
				}
				if expired() {
					return
				}
				req, err := http.NewRequest(http.MethodGet, entry+cfg.Path(int(i)), nil)
				if err != nil {
					errs.Add(1)
					continue
				}
				if cfg.Header != nil {
					for k, vv := range cfg.Header(int(i)) {
						req.Header[k] = vv
					}
				}
				for {
					resp, err := client.Do(req)
					if err != nil {
						errs.Add(1)
						break
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						done.Add(1)
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests {
						errs.Add(1)
						break
					}
					shed.Add(1)
					if expired() {
						return
					}
					time.Sleep(retryWait(resp, cfg.RetryWait))
				}
			}
		}(w)
	}
	wg.Wait()
	stats.Done = done.Load()
	stats.Shed = shed.Load()
	stats.Errors = errs.Load()
	stats.Elapsed = time.Since(start)
	return stats
}

// retryWait picks the back-off a 429 asked for: the millisecond header
// when present, else the fallback.
func retryWait(resp *http.Response, fallback time.Duration) time.Duration {
	if ms := resp.Header.Get(HeaderRetryAfterMs); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			return time.Duration(v) * time.Millisecond
		}
	}
	return fallback
}
