package clusterserve

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkClusterRoute measures the per-request routing decision: one
// consistent-hash lookup over an 8-replica, 128-vnode ring. This sits on
// every proxied request, so it must stay allocation-free.
func BenchmarkClusterRoute(b *testing.B) {
	peers := make([]string, 8)
	for i := range peers {
		peers[i] = fmt.Sprintf("replica-%d", i)
	}
	ring, err := NewRing(peers, DefaultVNodes)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("cfg=%08x/m=fair-co2/p=%d:%d", i*2654435761, i%64, i%64+64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ring.Lookup(keys[i%len(keys)]) == "" {
			b.Fatal("empty owner")
		}
	}
}

// BenchmarkTokenBucket measures the admission decision over a churning
// tenant population — the other per-request cost the proxy adds.
func BenchmarkTokenBucket(b *testing.B) {
	table := newBucketTable(1e9, 1e9, 1<<16, time.Now)
	tenants := make([]string, 4096)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := table.allow(tenants[i%len(tenants)]); !ok {
			b.Fatal("unlimited-rate tenant denied")
		}
	}
}
