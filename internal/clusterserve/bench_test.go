package clusterserve

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkClusterRoute measures the per-request routing decision: one
// consistent-hash lookup over an 8-replica, 128-vnode ring. This sits on
// every proxied request, so it must stay allocation-free.
func BenchmarkClusterRoute(b *testing.B) {
	peers := make([]string, 8)
	for i := range peers {
		peers[i] = fmt.Sprintf("replica-%d", i)
	}
	ring, err := NewRing(peers, DefaultVNodes)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("cfg=%08x/m=fair-co2/p=%d:%d", i*2654435761, i%64, i%64+64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ring.Lookup(keys[i%len(keys)]) == "" {
			b.Fatal("empty owner")
		}
	}
}

// BenchmarkTokenBucket measures the admission decision over a churning
// tenant population — the other per-request cost the proxy adds.
func BenchmarkTokenBucket(b *testing.B) {
	table := newBucketTable(1e9, 1e9, 1<<16, time.Now)
	tenants := make([]string, 4096)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := table.allow(tenants[i%len(tenants)]); !ok {
			b.Fatal("unlimited-rate tenant denied")
		}
	}
}

// BenchmarkHedgedRoute measures the failover candidate walk the hedging
// path runs per request: the successor scan over an 8-replica ring plus
// one breaker admission check per candidate. It must stay allocation-free
// — the walk happens on every forwarded request, healthy cluster or not.
func BenchmarkHedgedRoute(b *testing.B) {
	peers := make([]string, 8)
	urls := make(map[string]string, 8)
	for i := range peers {
		peers[i] = fmt.Sprintf("replica-%d", i)
		urls[peers[i]] = "http://unused"
	}
	ring, err := NewRing(peers, DefaultVNodes)
	if err != nil {
		b.Fatal(err)
	}
	breakers := newBreakers(urls, HedgeConfig{}.withDefaults().Breaker)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("cfg=%08x/m=fair-co2/p=%d:%d", i*2654435761, i%64, i%64+64)
	}
	var cbuf [8]string
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands := ring.Successors(keys[i%len(keys)], 3, cbuf[:0])
		viable := 0
		for _, peer := range cands {
			if breakers[peer].Allow() == nil {
				viable++
			}
		}
		if viable == 0 {
			b.Fatal("no viable candidate on a healthy ring")
		}
	}
}

// BenchmarkCommitLogAppend measures recording one committed delta in the
// sequenced log — on the critical section of every commit, so the copy
// plus append must stay cheap and allocation-bounded.
func BenchmarkCommitLogAppend(b *testing.B) {
	body := []byte(`{"tenant":3,"cores":7,"commit":true,"pad":"0123456789abcdef"}`)
	l := &CommitLog{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&4095 == 0 {
			// Recreate periodically so the benchmark measures steady-state
			// appends, not the growth of one unbounded slice.
			b.StopTimer()
			l = &CommitLog{}
			b.StartTimer()
		}
		l.Append(CommitEntry{Stamp: uint64(i), Origin: "0", Body: body})
	}
}
