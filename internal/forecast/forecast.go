// Package forecast implements the demand-forecasting substrate of §5.3.
// The paper uses Meta's Prophet; this package provides the subset Prophet
// contributes there — an additive model with a linear trend and daily plus
// weekly Fourier seasonalities, fit by ordinary least squares — which is
// sufficient because datacenter demand is dominated by periodic structure
// (Figure 5). Forecasts feed Temporal Shapley to produce live embodied
// carbon intensity signals (Figure 11).
package forecast

import (
	"errors"
	"fmt"
	"math"

	"fairco2/internal/stats"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Config selects the model structure.
type Config struct {
	// DailyHarmonics is the number of Fourier pairs on the 24 h period.
	DailyHarmonics int
	// WeeklyHarmonics is the number of Fourier pairs on the 7-day period.
	WeeklyHarmonics int
}

// DefaultConfig matches the structure Prophet fits on the Azure trace:
// a handful of daily and weekly harmonics over a linear trend.
func DefaultConfig() Config {
	return Config{DailyHarmonics: 4, WeeklyHarmonics: 3}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.DailyHarmonics < 0 || c.WeeklyHarmonics < 0 {
		return errors.New("forecast: harmonic counts must be non-negative")
	}
	if c.DailyHarmonics == 0 && c.WeeklyHarmonics == 0 {
		return errors.New("forecast: need at least one seasonal component")
	}
	return nil
}

// Model is a fitted trend + seasonality model.
type Model struct {
	cfg   Config
	coefs []float64
	// start and step reproduce the history's sampling grid so Forecast
	// can continue it seamlessly.
	start, step units.Seconds
	historyLen  int
}

// numFeatures returns the design-matrix width.
func (c Config) numFeatures() int { return 2 + 2*c.DailyHarmonics + 2*c.WeeklyHarmonics }

// features fills row with the regression features at absolute time t.
func (c Config) features(t float64, row []float64) {
	row[0] = 1
	row[1] = t / units.SecondsPerDay // trend in days keeps the system well scaled
	k := 2
	for h := 1; h <= c.DailyHarmonics; h++ {
		w := 2 * math.Pi * float64(h) * t / units.SecondsPerDay
		row[k] = math.Sin(w)
		row[k+1] = math.Cos(w)
		k += 2
	}
	for h := 1; h <= c.WeeklyHarmonics; h++ {
		w := 2 * math.Pi * float64(h) * t / (7 * units.SecondsPerDay)
		row[k] = math.Sin(w)
		row[k+1] = math.Cos(w)
		k += 2
	}
}

// Fit estimates the model on a demand history.
func Fit(history *timeseries.Series, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if history == nil {
		return nil, errors.New("forecast: nil history")
	}
	p := cfg.numFeatures()
	if history.Len() < 2*p {
		return nil, fmt.Errorf("forecast: history of %d samples too short for %d features", history.Len(), p)
	}
	x := make([][]float64, history.Len())
	for i := range x {
		row := make([]float64, p)
		cfg.features(float64(history.TimeAt(i)), row)
		x[i] = row
	}
	coefs, err := stats.OLS(x, history.Values)
	if err != nil {
		return nil, fmt.Errorf("forecast: fitting: %w", err)
	}
	return &Model{
		cfg:        cfg,
		coefs:      coefs,
		start:      history.Start,
		step:       history.Step,
		historyLen: history.Len(),
	}, nil
}

// Predict evaluates the model at absolute time t.
func (m *Model) Predict(t units.Seconds) float64 {
	row := make([]float64, m.cfg.numFeatures())
	m.cfg.features(float64(t), row)
	v := 0.0
	for i, c := range m.coefs {
		v += c * row[i]
	}
	return v
}

// Forecast continues the history grid for n further samples. Forecasts are
// clamped at zero — demand cannot be negative.
func (m *Model) Forecast(n int) (*timeseries.Series, error) {
	if n < 1 {
		return nil, errors.New("forecast: need at least one step")
	}
	first := m.start + units.Seconds(float64(m.step)*float64(m.historyLen))
	values := make([]float64, n)
	for i := range values {
		t := first + units.Seconds(float64(m.step)*float64(i))
		v := m.Predict(t)
		if v < 0 {
			v = 0
		}
		values[i] = v
	}
	return timeseries.New(first, m.step, values), nil
}

// Evaluation reports forecast accuracy against ground truth.
type Evaluation struct {
	// MAPE is the mean absolute percentage error.
	MAPE float64
	// WorstAPE is the maximum absolute percentage error.
	WorstAPE float64
}

// Evaluate compares a forecast against the realized series over the same
// window.
func Evaluate(actual, predicted *timeseries.Series) (Evaluation, error) {
	if actual == nil || predicted == nil {
		return Evaluation{}, errors.New("forecast: nil series")
	}
	if actual.Start != predicted.Start || actual.Step != predicted.Step || actual.Len() != predicted.Len() {
		return Evaluation{}, errors.New("forecast: series not aligned")
	}
	mape, err := stats.MAPE(actual.Values, predicted.Values)
	if err != nil {
		return Evaluation{}, err
	}
	worst, err := stats.MaxAPE(actual.Values, predicted.Values)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{MAPE: mape, WorstAPE: worst}, nil
}

// Backtest fits on the first fitDays of the series, forecasts the
// remainder, and returns the stitched series (history + forecast) along
// with the accuracy of the forecast window — the paper's Figure 5 protocol
// (21 days of history, 9 days of forecast).
func Backtest(full *timeseries.Series, fitDays int, cfg Config) (stitched *timeseries.Series, eval Evaluation, err error) {
	if full == nil {
		return nil, Evaluation{}, errors.New("forecast: nil series")
	}
	perDay := int(units.SecondsPerDay / float64(full.Step))
	fitLen := fitDays * perDay
	if fitLen <= 0 || fitLen >= full.Len() {
		return nil, Evaluation{}, fmt.Errorf("forecast: fit window of %d days invalid for %d samples", fitDays, full.Len())
	}
	history, err := full.Head(fitLen)
	if err != nil {
		return nil, Evaluation{}, err
	}
	model, err := Fit(history, cfg)
	if err != nil {
		return nil, Evaluation{}, err
	}
	horizon := full.Len() - fitLen
	predicted, err := model.Forecast(horizon)
	if err != nil {
		return nil, Evaluation{}, err
	}
	actual, err := full.Tail(horizon)
	if err != nil {
		return nil, Evaluation{}, err
	}
	eval, err = Evaluate(actual, predicted)
	if err != nil {
		return nil, Evaluation{}, err
	}
	values := append(append([]float64(nil), history.Values...), predicted.Values...)
	return timeseries.New(full.Start, full.Step, values), eval, nil
}
