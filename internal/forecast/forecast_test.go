package forecast

import (
	"math"
	"testing"

	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
	"fairco2/internal/units"
)

// syntheticSeries builds a noiseless daily+weekly series the model family
// can represent exactly.
func syntheticSeries(days int) *timeseries.Series {
	step := units.Seconds(3600)
	n := days * 24
	values := make([]float64, n)
	for i := range values {
		t := float64(step) * float64(i)
		values[i] = 1000 +
			0.5*t/units.SecondsPerDay +
			120*math.Sin(2*math.Pi*t/units.SecondsPerDay) +
			40*math.Cos(2*math.Pi*t/(7*units.SecondsPerDay))
	}
	return timeseries.New(0, step, values)
}

func TestFitRecoversRepresentableSignal(t *testing.T) {
	s := syntheticSeries(21)
	m, err := Fit(s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// In-sample predictions should be near exact.
	for i := 0; i < s.Len(); i += 37 {
		got := m.Predict(s.TimeAt(i))
		if math.Abs(got-s.Values[i]) > 1e-3*s.Values[i] {
			t.Fatalf("sample %d: predicted %v, want %v", i, got, s.Values[i])
		}
	}
}

func TestForecastContinuesGrid(t *testing.T) {
	s := syntheticSeries(21)
	m, err := Fit(s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Forecast(9 * 24)
	if err != nil {
		t.Fatal(err)
	}
	if f.Start != s.End() || f.Step != s.Step || f.Len() != 9*24 {
		t.Fatalf("forecast grid wrong: start %v step %v len %d", f.Start, f.Step, f.Len())
	}
	// Out-of-sample accuracy on the representable signal is near exact.
	truth := syntheticSeries(30)
	actual, err := truth.Tail(9 * 24)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := Evaluate(actual, f)
	if err != nil {
		t.Fatal(err)
	}
	if eval.MAPE > 0.1 {
		t.Errorf("MAPE %v%% too high for a representable signal", eval.MAPE)
	}
}

func TestBacktestOnAzureLikeTrace(t *testing.T) {
	// The paper's Figure 5 protocol: 21 days of history forecast the
	// remaining 9 days with single-digit MAPE.
	full, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	stitched, eval, err := Backtest(full, 21, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stitched.Len() != full.Len() {
		t.Fatalf("stitched length %d, want %d", stitched.Len(), full.Len())
	}
	// History half is passed through verbatim.
	for i := 0; i < 21*288; i += 101 {
		if stitched.Values[i] != full.Values[i] {
			t.Fatal("history window should be verbatim")
		}
	}
	t.Logf("9-day demand forecast: MAPE %.2f%%, worst APE %.2f%%", eval.MAPE, eval.WorstAPE)
	if eval.MAPE > 10 {
		t.Errorf("MAPE %.2f%% too high; periodic structure should be learnable", eval.MAPE)
	}
	if eval.WorstAPE < eval.MAPE {
		t.Error("worst APE cannot undercut MAPE")
	}
}

func TestForecastClampsNegative(t *testing.T) {
	// A steeply decaying trend would go negative; forecasts must clamp.
	step := units.Seconds(3600)
	n := 21 * 24
	values := make([]float64, n)
	for i := range values {
		t := float64(step) * float64(i)
		values[i] = 1000 - 3*t/3600 + 10*math.Sin(2*math.Pi*t/units.SecondsPerDay)
		if values[i] < 1 {
			values[i] = 1
		}
	}
	m, err := Fit(timeseries.New(0, step, values), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Forecast(60 * 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f.Values {
		if v < 0 {
			t.Fatal("forecast must clamp at zero")
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{DailyHarmonics: -1}).Validate(); err == nil {
		t.Error("negative harmonics")
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("no seasonality")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, DefaultConfig()); err == nil {
		t.Error("nil history")
	}
	short := timeseries.New(0, 1, make([]float64, 5))
	if _, err := Fit(short, DefaultConfig()); err == nil {
		t.Error("short history")
	}
	s := syntheticSeries(10)
	if _, err := Fit(s, Config{}); err == nil {
		t.Error("invalid config")
	}
}

func TestForecastErrors(t *testing.T) {
	m, err := Fit(syntheticSeries(14), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0); err == nil {
		t.Error("zero horizon")
	}
}

func TestEvaluateErrors(t *testing.T) {
	a := timeseries.New(0, 1, []float64{1, 2})
	b := timeseries.New(1, 1, []float64{1, 2})
	if _, err := Evaluate(nil, a); err == nil {
		t.Error("nil actual")
	}
	if _, err := Evaluate(a, nil); err == nil {
		t.Error("nil predicted")
	}
	if _, err := Evaluate(a, b); err == nil {
		t.Error("misaligned")
	}
	zeros := timeseries.New(0, 1, []float64{0, 0})
	if _, err := Evaluate(zeros, zeros); err == nil {
		t.Error("all-zero actuals")
	}
}

func TestBacktestErrors(t *testing.T) {
	full := syntheticSeries(30)
	if _, _, err := Backtest(nil, 21, DefaultConfig()); err == nil {
		t.Error("nil series")
	}
	if _, _, err := Backtest(full, 0, DefaultConfig()); err == nil {
		t.Error("zero fit window")
	}
	if _, _, err := Backtest(full, 30, DefaultConfig()); err == nil {
		t.Error("fit window covers everything")
	}
	if _, _, err := Backtest(full, 21, Config{}); err == nil {
		t.Error("bad config")
	}
}
