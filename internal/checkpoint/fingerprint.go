package checkpoint

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// Config fingerprinting shared by the subsystems that key persisted or
// cached state by configuration: the checkpointed sweeps (montecarlo,
// temporal) refuse to resume a snapshot whose config key does not match
// the running configuration, and the attribution query service keys its
// result cache the same way. Centralizing the hash keeps every consumer
// on one CRC so keys stay comparable across subsystems and releases.

// Uint64sCRC returns the IEEE CRC-32 over the little-endian encoding of
// vals — the canonical fingerprint of a sequence of integers (shapes,
// layouts, bit-cast floats).
func Uint64sCRC(vals []uint64) uint32 {
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return h.Sum32()
}

// Float64sCRC returns the IEEE CRC-32 over the little-endian bit patterns
// of vals. Hashing the bits (not a decimal rendering) makes the
// fingerprint exact: any sample change, however small, changes the key.
func Float64sCRC(vals []float64) uint32 {
	return Float64sCRCUpdate(0, vals)
}

// Float64sCRCUpdate extends a running IEEE CRC-32 with the little-endian
// bit patterns of vals and returns the new checksum. Starting from 0 it
// equals Float64sCRC, and chaining calls over consecutive chunks equals
// one call over their concatenation — the block-fingerprint primitive the
// incremental delta engines use to stamp table blocks and demand periods.
// It allocates one small encode buffer per call; hot loops that must not
// allocate pass their own via Float64sCRCUpdateBuf.
func Float64sCRCUpdate(crc uint32, vals []float64) uint32 {
	var buf [256]byte
	return Float64sCRCUpdateBuf(crc, vals, buf[:])
}

// Float64sCRCUpdateBuf is Float64sCRCUpdate encoding through the
// caller-provided byte buffer (len >= 8; larger buffers batch the
// encode/checksum round trips). The stdlib's IEEE fast path dispatches
// through a function pointer, which forces any local encode buffer to the
// heap — threading a preallocated one through here is what lets the delta
// engines refresh fingerprints with zero allocations.
func Float64sCRCUpdateBuf(crc uint32, vals []float64, buf []byte) uint32 {
	words := len(buf) / 8
	if words == 0 {
		words = 1
		buf = make([]byte, 8)
	}
	for len(vals) > 0 {
		n := min(len(vals), words)
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:n*8])
		vals = vals[n:]
	}
	return crc
}
