package checkpoint

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// Config fingerprinting shared by the subsystems that key persisted or
// cached state by configuration: the checkpointed sweeps (montecarlo,
// temporal) refuse to resume a snapshot whose config key does not match
// the running configuration, and the attribution query service keys its
// result cache the same way. Centralizing the hash keeps every consumer
// on one CRC so keys stay comparable across subsystems and releases.

// Uint64sCRC returns the IEEE CRC-32 over the little-endian encoding of
// vals — the canonical fingerprint of a sequence of integers (shapes,
// layouts, bit-cast floats).
func Uint64sCRC(vals []uint64) uint32 {
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return h.Sum32()
}

// Float64sCRC returns the IEEE CRC-32 over the little-endian bit patterns
// of vals. Hashing the bits (not a decimal rendering) makes the
// fingerprint exact: any sample change, however small, changes the key.
func Float64sCRC(vals []float64) uint32 {
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum32()
}
