package checkpoint

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// runUnit invokes a unit with panic isolation: a panicking unit becomes a
// unit error, so the sweep still cancels cleanly and flushes a final
// snapshot of every intact completed unit instead of crashing the process.
// Callers that want a typed panic error (the Shapley engine) install their
// own recover inside Run; it fires first and wins.
func runUnit(run func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("checkpoint: unit %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return run(i)
}

// RunConfig describes a checkpointed sweep over independent units of work
// for RunUnits. The compute paths (Monte Carlo trials, temporal top-level
// periods, Shapley table blocks) share this one coordinator so they all get
// the same cancellation, checkpoint cadence and crash-injection behavior.
type RunConfig struct {
	// Units is the total number of work units, addressed 0..Units-1.
	Units int
	// Workers bounds parallelism; <= 0 means GOMAXPROCS. The coordinator
	// clamps it to the number of pending units.
	Workers int
	// Every is the number of completed units between snapshots; <= 0
	// saves only the final snapshot. A snapshot is always written when
	// the sweep ends — normally, on cancellation, or on a unit error —
	// so no completed work is ever lost.
	Every int
	// Skip reports units already completed by a restored snapshot; nil
	// skips nothing.
	Skip func(i int) bool
	// Run executes unit i. It is called from worker goroutines; distinct
	// units must not share mutable state.
	Run func(i int) error
	// Complete is invoked on the coordinator goroutine after unit i's
	// Run returns nil, strictly ordered with Save calls — state mutated
	// here is safe for Save to read without extra locking.
	Complete func(i int)
	// Save snapshots progress; nil disables checkpointing.
	Save func() error
	// HoldDir is where the crash-injection hook drops its marker file
	// (normally the checkpoint directory).
	HoldDir string
}

// RunUnits executes every non-skipped unit on a worker pool, invoking
// Complete and periodic Saves on the coordinator goroutine. On context
// cancellation it stops dispatching new units, waits for in-flight units to
// finish, writes a final snapshot and returns an error wrapping ctx.Err();
// a unit error cancels the remaining units the same way and is returned
// after its own final snapshot.
func RunUnits(ctx context.Context, rc RunConfig) error {
	if rc.Run == nil {
		return errors.New("checkpoint: RunConfig.Run is nil")
	}
	var pending []int
	for i := 0; i < rc.Units; i++ {
		if rc.Skip == nil || !rc.Skip(i) {
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return ctx.Err()
	}
	workers := rc.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, len(pending))

	// The feeder stops on cancellation (external or unit-error); workers
	// drain the job channel and close results, and the coordinator below
	// always consumes results to completion, so no goroutine leaks.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		i   int
		err error
	}
	jobs := make(chan int)
	results := make(chan result)
	go func() {
		defer close(jobs)
		for _, i := range pending {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results <- result{i, runUnit(rc.Run, i)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var unitErr error
	completed, sinceSave := 0, 0
	holdAt := holdAfterUnits()
	for r := range results {
		if r.err != nil {
			if unitErr == nil {
				unitErr = r.err
				cancel()
			}
			continue
		}
		if rc.Complete != nil {
			rc.Complete(r.i)
		}
		completed++
		sinceSave++
		if rc.Save != nil && rc.Every > 0 && sinceSave >= rc.Every {
			if err := rc.Save(); err != nil {
				if unitErr == nil {
					unitErr = err
					cancel()
				}
				continue
			}
			sinceSave = 0
		}
		if holdAt > 0 && completed == holdAt {
			holdForever(rc.HoldDir, "run.hold")
		}
	}
	if rc.Save != nil && sinceSave > 0 {
		if err := rc.Save(); err != nil && unitErr == nil {
			unitErr = err
		}
	}
	if unitErr != nil {
		return unitErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("checkpoint: interrupted after %d of %d pending units: %w", completed, len(pending), err)
	}
	return nil
}
