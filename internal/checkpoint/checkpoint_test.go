package checkpoint

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		env := Encode(uint64(i)+7, p)
		seq, got, err := Decode(env)
		if err != nil {
			t.Fatalf("payload %d: %v", i, err)
		}
		if seq != uint64(i)+7 {
			t.Errorf("payload %d: seq %d", i, seq)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("payload %d: payload mismatch", i)
		}
	}
}

func TestDecodeCorruption(t *testing.T) {
	intact := Encode(3, []byte("the quick brown fox"))
	flipPayload := append([]byte(nil), intact...)
	flipPayload[headerSize+2] ^= 0x40
	flipCRC := append([]byte(nil), intact...)
	flipCRC[len(flipCRC)-1] ^= 0x01
	badMagic := append([]byte(nil), intact...)
	badMagic[0] = 'X'
	badLen := append([]byte(nil), intact...)
	binary.LittleEndian.PutUint64(badLen[20:], 9999)

	// A future-version envelope with a correct CRC must be classified as a
	// version mismatch, not corruption.
	future := append([]byte(nil), intact...)
	binary.LittleEndian.PutUint32(future[8:], 99)
	sum := crc32.ChecksumIEEE(future[8 : len(future)-trailerSize])
	binary.LittleEndian.PutUint32(future[len(future)-trailerSize:], sum)

	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrCorruptCheckpoint},
		{"truncated header", intact[:10], ErrCorruptCheckpoint},
		{"truncated payload", intact[:len(intact)-6], ErrCorruptCheckpoint},
		{"flipped payload byte", flipPayload, ErrCorruptCheckpoint},
		{"flipped crc byte", flipCRC, ErrCorruptCheckpoint},
		{"bad magic", badMagic, ErrCorruptCheckpoint},
		{"length mismatch", badLen, ErrCorruptCheckpoint},
		{"unknown version", future, ErrVersionMismatch},
	}
	for _, tc := range cases {
		if _, _, err := Decode(tc.buf); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestStoreSaveLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "exp")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store Load: %v", err)
	}
	for i := 1; i <= 3; i++ {
		seq, err := s.Save([]byte(fmt.Sprintf("state-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("save %d got seq %d", i, seq)
		}
	}
	payload, seq, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || string(payload) != "state-3" {
		t.Fatalf("loaded seq %d payload %q", seq, payload)
	}
	// Retention: only the newest two snapshots survive.
	seqs, err := s.sequences()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 2 || seqs[1] != 3 {
		t.Fatalf("retained %v, want [2 3]", seqs)
	}
	// A reopened store continues the sequence past everything on disk.
	s2, err := Open(dir, "exp")
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := s2.Save([]byte("state-4")); err != nil || seq != 4 {
		t.Fatalf("reopened save: seq %d err %v", seq, err)
	}
}

// corruptNewest damages the highest-sequence snapshot file of a store.
func corruptNewest(t *testing.T, s *Store, damage func(path string, buf []byte)) string {
	t.Helper()
	seqs, err := s.sequences()
	if err != nil || len(seqs) == 0 {
		t.Fatalf("sequences: %v %v", seqs, err)
	}
	path := s.path(seqs[len(seqs)-1])
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damage(path, buf)
	return path
}

func TestStoreFallbackToOlderIntactSnapshot(t *testing.T) {
	damages := map[string]func(path string, buf []byte){
		"truncated": func(path string, buf []byte) { os.WriteFile(path, buf[:len(buf)/2], 0o666) },
		"flipped crc byte": func(path string, buf []byte) {
			buf[len(buf)-2] ^= 0x10
			os.WriteFile(path, buf, 0o666)
		},
		"empty": func(path string, buf []byte) { os.WriteFile(path, nil, 0o666) },
		"unknown version": func(path string, buf []byte) {
			binary.LittleEndian.PutUint32(buf[8:], 42)
			sum := crc32.ChecksumIEEE(buf[8 : len(buf)-trailerSize])
			binary.LittleEndian.PutUint32(buf[len(buf)-trailerSize:], sum)
			os.WriteFile(path, buf, 0o666)
		},
	}
	for name, damage := range damages {
		t.Run(name, func(t *testing.T) {
			s, err := Open(t.TempDir(), "exp")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Save([]byte("older-intact")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Save([]byte("newer-damaged")); err != nil {
				t.Fatal(err)
			}
			corruptNewest(t, s, damage)
			payload, seq, err := s.Load()
			if err != nil {
				t.Fatalf("Load after damage: %v", err)
			}
			if seq != 1 || string(payload) != "older-intact" {
				t.Fatalf("loaded seq %d payload %q, want the older intact snapshot", seq, payload)
			}
		})
	}
}

func TestStoreAllSnapshotsDamaged(t *testing.T) {
	s, err := Open(t.TempDir(), "exp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("one")); err != nil {
		t.Fatal(err)
	}
	corruptNewest(t, s, func(path string, buf []byte) { os.WriteFile(path, buf[:headerSize], 0o666) })
	if _, _, err := s.Load(); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("want ErrCorruptCheckpoint, got %v", err)
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"exp-zzzz.ckpt", "exp-0001.ckpt", "other-0000000000000001.ckpt", "readme.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(dir, "exp")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("foreign files must not count as snapshots: %v", err)
	}
}

func TestOpenRejectsBadArguments(t *testing.T) {
	if _, err := Open("", "x"); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := Open(t.TempDir(), ""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := Open(t.TempDir(), "a/b"); err == nil {
		t.Error("name with separator accepted")
	}
}

func TestWriteFileAtomicPreservesOldContentOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(path, []byte("old complete content\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	// The writer emits half the output, then fails — as an interrupted
	// export would. The destination must keep its previous content and no
	// temp litter may be promoted.
	err := WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "new partial"); err != nil {
			return err
		}
		return errors.New("boom")
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old complete content\n" {
		t.Fatalf("destination changed to %q after failed write", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp file left behind: %v", entries)
	}
}

func TestWriteFileAtomicReplacesContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	for _, content := range []string{"first\n", "second\n"} {
		if err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("got %q want %q", got, content)
		}
	}
}

// memState is a minimal Resumable for store-level tests.
type memState struct {
	key  string
	data string
}

func (m *memState) Snapshot() ([]byte, error) {
	if m.key == "snapshot-fails" {
		return nil, errors.New("snapshot failure")
	}
	return []byte(m.key + "|" + m.data), nil
}

func (m *memState) Restore(payload []byte) error {
	key, data, ok := bytes.Cut(payload, []byte("|"))
	if !ok {
		return fmt.Errorf("%w: no separator", ErrCorruptCheckpoint)
	}
	if string(key) != m.key {
		return fmt.Errorf("%w: key %q vs %q", ErrStateMismatch, key, m.key)
	}
	m.data = string(data)
	return nil
}

func TestResumableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "res")
	if err != nil {
		t.Fatal(err)
	}
	fresh := &memState{key: "k"}
	if resumed, err := s.RestoreLatest(fresh); err != nil || resumed {
		t.Fatalf("fresh start: resumed=%t err=%v", resumed, err)
	}
	if err := s.SaveResumable(&memState{key: "k", data: "progress"}); err != nil {
		t.Fatal(err)
	}
	restored := &memState{key: "k"}
	if resumed, err := s.RestoreLatest(restored); err != nil || !resumed {
		t.Fatalf("resume: resumed=%t err=%v", resumed, err)
	}
	if restored.data != "progress" {
		t.Fatalf("restored %q", restored.data)
	}
	mismatched := &memState{key: "other"}
	if _, err := s.RestoreLatest(mismatched); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("config mismatch: %v", err)
	}
	if err := s.SaveResumable(&memState{key: "snapshot-fails"}); err == nil {
		t.Error("snapshot error not propagated")
	}
}

func TestSpecEnabled(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Error("zero Spec enabled")
	}
	if !(Spec{Dir: "x"}).Enabled() {
		t.Error("Spec with dir disabled")
	}
}

func TestRunUnitsCompletesAndSaves(t *testing.T) {
	var mu sync.Mutex
	ran := make([]bool, 20)
	completed := 0
	saves := 0
	err := RunUnits(context.Background(), RunConfig{
		Units:   20,
		Workers: 4,
		Every:   6,
		Skip:    func(i int) bool { return i < 5 },
		Run: func(i int) error {
			mu.Lock()
			ran[i] = true
			mu.Unlock()
			return nil
		},
		Complete: func(i int) { completed++ },
		Save:     func() error { saves++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ran {
		if r != (i >= 5) {
			t.Errorf("unit %d ran=%t", i, r)
		}
	}
	if completed != 15 {
		t.Errorf("completed %d", completed)
	}
	// 15 units at a cadence of 6: saves after 6 and 12, plus the final.
	if saves != 3 {
		t.Errorf("saves %d, want 3", saves)
	}
}

func TestRunUnitsAllSkippedIsNoop(t *testing.T) {
	err := RunUnits(context.Background(), RunConfig{
		Units: 4,
		Skip:  func(int) bool { return true },
		Run:   func(int) error { t.Error("ran a skipped unit"); return nil },
		Save:  func() error { t.Error("saved with nothing new"); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnitsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	completed := 0
	saves := 0
	err := RunUnits(ctx, RunConfig{
		Units:    50,
		Workers:  2,
		Run:      func(i int) error { return nil },
		Complete: func(i int) { completed++ },
		Save:     func() error { saves++; return nil },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// In-flight units may complete; anything that did must be saved.
	if completed > 0 && saves == 0 {
		t.Errorf("%d completions but no final save", completed)
	}
}

func TestRunUnitsUnitErrorCancelsSweep(t *testing.T) {
	boom := errors.New("unit failure")
	var mu sync.Mutex
	completed := 0
	saved := false
	err := RunUnits(context.Background(), RunConfig{
		Units:   100,
		Workers: 2,
		Run: func(i int) error {
			if i == 3 {
				return boom
			}
			return nil
		},
		Complete: func(i int) {
			mu.Lock()
			completed++
			mu.Unlock()
		},
		Save: func() error { saved = true; return nil },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want unit error, got %v", err)
	}
	if completed >= 99 {
		t.Errorf("sweep did not stop early: %d completions", completed)
	}
	if completed > 0 && !saved {
		t.Error("completed work not saved after unit error")
	}
}

func TestRunUnitsSaveErrorStopsSweep(t *testing.T) {
	boom := errors.New("disk full")
	err := RunUnits(context.Background(), RunConfig{
		Units:   50,
		Workers: 2,
		Every:   1,
		Run:     func(i int) error { return nil },
		Save:    func() error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want save error, got %v", err)
	}
}

func TestRunUnitsNilRun(t *testing.T) {
	if err := RunUnits(context.Background(), RunConfig{Units: 1}); err == nil {
		t.Error("nil Run accepted")
	}
}

func TestEnvHooksDisabledByDefault(t *testing.T) {
	t.Setenv(EnvHoldSaveWrite, "")
	t.Setenv(EnvHoldAfterUnits, "not-a-number")
	t.Setenv(EnvHoldExport, "")
	if holdSaveNumber() != 0 || holdAfterUnits() != 0 || exportHoldRequested() {
		t.Error("hooks armed without valid env values")
	}
	t.Setenv(EnvHoldAfterUnits, "-3")
	if holdAfterUnits() != 0 {
		t.Error("negative hold count accepted")
	}
	t.Setenv(EnvHoldAfterUnits, "7")
	if holdAfterUnits() != 7 {
		t.Error("valid hold count rejected")
	}
}

func TestStoreDirAndTouchAge(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "exp")
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != dir {
		t.Errorf("Dir() = %q", s.Dir())
	}
	s.TouchAge() // no write yet: must not panic
	if _, err := s.Save([]byte("x")); err != nil {
		t.Fatal(err)
	}
	s.TouchAge()
}

func TestOpenDirectoryCreationFailure(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(file, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	// MkdirAll under a regular file must fail.
	if _, err := Open(filepath.Join(file, "sub"), "exp"); err == nil {
		t.Error("Open under a regular file succeeded")
	}
}

func TestSaveFailsWhenDirectoryVanishes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	s, err := Open(dir, "exp")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("x")); err == nil {
		t.Error("Save into a removed directory succeeded")
	}
	if _, _, err := s.Load(); err == nil {
		t.Error("Load from a removed directory succeeded")
	}
}

func TestLoadSkipsUnreadableSnapshot(t *testing.T) {
	s, err := Open(t.TempDir(), "exp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("older-intact")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("newer-unreadable")); err != nil {
		t.Fatal(err)
	}
	// Replace the newest snapshot with a directory so ReadFile errors
	// (works even when the tests run as root, unlike chmod 0).
	path := corruptNewest(t, s, func(path string, _ []byte) {
		os.Remove(path)
		os.Mkdir(path, 0o777)
	})
	payload, seq, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if seq != 1 || string(payload) != "older-intact" {
		t.Fatalf("loaded seq %d payload %q", seq, payload)
	}
	os.Remove(path)
}

func TestRestoreLatestSurfacesLoadError(t *testing.T) {
	s, err := Open(t.TempDir(), "exp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("x")); err != nil {
		t.Fatal(err)
	}
	corruptNewest(t, s, func(path string, buf []byte) { os.WriteFile(path, buf[:5], 0o666) })
	if resumed, err := s.RestoreLatest(&memState{key: "k"}); resumed || !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("resumed=%t err=%v", resumed, err)
	}
}

func TestWriteFileAtomicBareFileName(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	// A path with no directory component exercises the dir == "." branch.
	if err := WriteFileAtomic("bare.csv", func(w io.Writer) error {
		_, err := io.WriteString(w, "ok")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("bare.csv")
	if err != nil || string(got) != "ok" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestWriteFileAtomicMissingDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "missing", "out.csv")
	err := WriteFileAtomic(path, func(w io.Writer) error { return nil })
	if err == nil {
		t.Error("write into a missing directory succeeded")
	}
}

func TestWriteFileAtomicRenameFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "occupied")
	// A non-empty directory at the destination makes the rename fail.
	if err := os.MkdirAll(filepath.Join(path, "child"), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	}); err == nil {
		t.Error("rename over a non-empty directory succeeded")
	}
	// The failed temp file must have been cleaned up.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover entries: %v", entries)
	}
}

func TestRunUnitsPanicIsolation(t *testing.T) {
	saved := false
	err := RunUnits(context.Background(), RunConfig{
		Units:   20,
		Workers: 2,
		Run: func(i int) error {
			if i == 5 {
				panic("unit exploded")
			}
			return nil
		},
		Save: func() error { saved = true; return nil },
	})
	if err == nil || !strings.Contains(err.Error(), "unit 5 panicked: unit exploded") {
		t.Fatalf("err = %v", err)
	}
	if !saved {
		t.Error("no final snapshot after a unit panic")
	}
}
