package checkpoint

import (
	"os"
	"path/filepath"
	"strconv"
)

// Crash-injection hooks for the subprocess test harness. Each hook is armed
// by an environment variable, writes a marker file the parent process polls
// for, then blocks the calling goroutine forever so the parent can land a
// SIGKILL at an exactly scripted instant. They are inert (single getenv per
// event) unless the variables are set, and they exist only so the tests can
// prove the recovery properties — production runs never set them.
const (
	// EnvHoldSaveWrite holds the N-th Store.Save of the process after the
	// temp file is written and fsynced but before the rename, i.e. in the
	// middle of a checkpoint write. The previous intact snapshot is still
	// the newest complete one on disk.
	EnvHoldSaveWrite = "FAIRCO2_CHECKPOINT_HOLD_WRITE"
	// EnvHoldAfterUnits holds a RunUnits loop after N units have
	// completed (mid-sweep, between checkpoints).
	EnvHoldAfterUnits = "FAIRCO2_RUN_HOLD_AFTER_UNITS"
	// EnvHoldExport holds every WriteFileAtomic before its rename
	// (mid-export: the destination still has its old content).
	EnvHoldExport = "FAIRCO2_EXPORT_HOLD"
)

func envInt(key string) int {
	v := os.Getenv(key)
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0
	}
	return n
}

// holdSaveNumber returns the 1-based Save call to hold, 0 for never.
func holdSaveNumber() int { return envInt(EnvHoldSaveWrite) }

// holdAfterUnits returns the completion count to hold at, 0 for never.
func holdAfterUnits() int { return envInt(EnvHoldAfterUnits) }

// exportHoldRequested reports whether atomic file exports should hold
// before their rename.
func exportHoldRequested() bool { return os.Getenv(EnvHoldExport) != "" }

// holdForever drops a marker file and parks the goroutine until the parent
// kills the process. The marker write is deliberately non-atomic — it only
// synchronizes the test parent, it is not a checkpoint.
func holdForever(dir, marker string) {
	os.WriteFile(filepath.Join(dir, marker), []byte("held\n"), 0o666)
	select {}
}
