package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file so that a crash at any instant leaves
// either the previous content or the new content at path — never a
// truncated mixture. The write callback streams into a temp file created
// in the destination directory (same filesystem, so the rename is atomic);
// the temp file is fsynced and closed before the rename, and the directory
// is fsynced after it so the new directory entry survives a power loss.
// On any error the temp file is removed and path is left untouched.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	return writeFileAtomic(path, write, func() {
		if exportHoldRequested() {
			holdForever(filepath.Dir(path), filepath.Base(path)+".hold")
		}
	})
}

// writeFileAtomic is WriteFileAtomic with an explicit pre-rename hook; the
// crash-injection tests use the hook to land a SIGKILL in the window where
// the new bytes exist only under the temp name.
func writeFileAtomic(path string, write func(w io.Writer) error, beforeRename func()) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if beforeRename != nil {
		beforeRename()
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Platforms
// whose directory handles reject fsync (it is optional on some) degrade to
// a plain rename, which is still atomic against crashes of this process.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// EINVAL/ENOTSUP from directory fsync is a platform quirk, not a
		// data-loss event for this process's crash model.
		return nil
	}
	return nil
}
