// Package checkpoint is Fair-CO2's crash-safe snapshot subsystem: the
// long-running compute paths (Monte Carlo sweeps, temporal attribution over
// month-long traces, exact Shapley table builds) periodically persist their
// progress so a crash, OOM kill or operator SIGINT loses at most one
// checkpoint interval instead of hours of work. Because every trial derives
// its RNG from the experiment seed and the trial index, a resumed run is
// bitwise-identical to an uninterrupted one — the checkpoint only records
// which units of work are done and their results, never sampler state.
//
// Snapshots are stored as versioned envelopes — a fixed header (magic,
// format version, monotonic sequence number, payload length) followed by an
// arbitrary payload and a CRC32 over both — written atomically: the bytes go
// to a temp file in the destination directory, the file is fsynced, then
// renamed over the final name and the directory is fsynced. A torn write
// therefore never replaces an intact older snapshot; it leaves a temp file
// (or a truncated new file) that validation rejects, and Load falls back to
// the newest older snapshot that passes its CRC.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Typed sentinels, matched with errors.Is.
var (
	// ErrNoCheckpoint reports that the store holds no snapshot at all.
	ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")
	// ErrCorruptCheckpoint reports a snapshot that failed structural or
	// CRC validation (truncated file, flipped bits, empty file).
	ErrCorruptCheckpoint = errors.New("checkpoint: corrupt checkpoint")
	// ErrVersionMismatch reports an envelope written by an unknown format
	// version.
	ErrVersionMismatch = errors.New("checkpoint: unknown checkpoint version")
	// ErrStateMismatch reports a snapshot whose recorded configuration is
	// incompatible with the resuming computation (different seed, trial
	// count, split schedule, ...). Resuming would silently mix results
	// from two different experiments, so callers must either delete the
	// checkpoint directory or rerun with the original configuration.
	ErrStateMismatch = errors.New("checkpoint: checkpoint belongs to a different configuration")
)

// Spec selects a checkpoint directory and cadence for a compute path. The
// zero value disables checkpointing entirely; it is what the -checkpoint-dir
// and -checkpoint-every CLI flags map onto.
type Spec struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Every is the number of completed work units (trials, periods, table
	// blocks) between snapshots; <= 0 writes only the final snapshot.
	Every int
}

// Enabled reports whether the spec selects a checkpoint directory.
func (sp Spec) Enabled() bool { return sp.Dir != "" }

// Resumable is implemented by computations that can snapshot their progress
// and later restore it. Snapshot must return a self-contained payload;
// Restore must validate it (returning ErrStateMismatch via fmt.Errorf %w
// wrapping when it belongs to a different configuration) and rebuild the
// in-memory progress.
type Resumable interface {
	Snapshot() ([]byte, error)
	Restore(payload []byte) error
}

// Envelope layout (little-endian):
//
//	offset  size  field
//	0       8     magic "FC2CKPT1"
//	8       4     format version (currently 1)
//	12      8     monotonic sequence number
//	20      8     payload length
//	28      n     payload
//	28+n    4     CRC32 (IEEE) over bytes [8, 28+n)
const (
	magic         = "FC2CKPT1"
	formatVersion = 1
	headerSize    = 8 + 4 + 8 + 8
	trailerSize   = 4
	fileSuffix    = ".ckpt"
)

// Encode wraps a payload in a checkpoint envelope.
func Encode(seq uint64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload)+trailerSize)
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[8:], formatVersion)
	binary.LittleEndian.PutUint64(buf[12:], seq)
	binary.LittleEndian.PutUint64(buf[20:], uint64(len(payload)))
	copy(buf[headerSize:], payload)
	sum := crc32.ChecksumIEEE(buf[8 : headerSize+len(payload)])
	binary.LittleEndian.PutUint32(buf[headerSize+len(payload):], sum)
	return buf
}

// Decode validates an envelope and returns its sequence number and payload.
// Structural damage (short file, bad magic, length mismatch, CRC failure)
// returns ErrCorruptCheckpoint; an unknown format version with an intact CRC
// returns ErrVersionMismatch.
func Decode(buf []byte) (seq uint64, payload []byte, err error) {
	if len(buf) < headerSize+trailerSize {
		return 0, nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte envelope minimum",
			ErrCorruptCheckpoint, len(buf), headerSize+trailerSize)
	}
	if string(buf[:8]) != magic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorruptCheckpoint, buf[:8])
	}
	n := binary.LittleEndian.Uint64(buf[20:])
	if n != uint64(len(buf)-headerSize-trailerSize) {
		return 0, nil, fmt.Errorf("%w: payload length %d does not match file size %d",
			ErrCorruptCheckpoint, n, len(buf))
	}
	want := binary.LittleEndian.Uint32(buf[headerSize+n:])
	if got := crc32.ChecksumIEEE(buf[8 : headerSize+n]); got != want {
		return 0, nil, fmt.Errorf("%w: CRC32 %08x, envelope declares %08x", ErrCorruptCheckpoint, got, want)
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != formatVersion {
		return 0, nil, fmt.Errorf("%w: version %d, this build reads version %d", ErrVersionMismatch, v, formatVersion)
	}
	return binary.LittleEndian.Uint64(buf[12:]), buf[headerSize : headerSize+n], nil
}

// Store persists a named sequence of snapshots inside a directory. Multiple
// stores may share a directory as long as their names differ. All methods
// are safe for concurrent use.
type Store struct {
	dir  string
	name string

	mu        sync.Mutex
	seq       uint64 // sequence number of the next write
	keep      int    // intact snapshots retained after a write
	lastWrite time.Time
	saves     int // writes by this process, for the crash-injection hook
}

// Open prepares a snapshot store named name under dir, creating the
// directory if needed. The next write continues the sequence after the
// newest existing snapshot, intact or not, so a crashed write never causes
// a sequence number to be reused.
func Open(dir, name string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty directory")
	}
	if name == "" || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("checkpoint: invalid store name %q", name)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{dir: dir, name: name, keep: 2}
	seqs, err := s.sequences()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		s.seq = seqs[len(seqs)-1] + 1
	} else {
		s.seq = 1
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// path returns the snapshot file name for a sequence number. The fixed-width
// hex encoding keeps lexical and numeric order identical.
func (s *Store) path(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%016x%s", s.name, seq, fileSuffix))
}

// sequences returns the sequence numbers present on disk, ascending.
func (s *Store) sequences() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var seqs []uint64
	prefix := s.name + "-"
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), fileSuffix)
		seq, err := strconv.ParseUint(hex, 16, 64)
		if err != nil || len(hex) != 16 {
			continue // foreign file; never considered, never deleted
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Save writes payload as the next snapshot in the sequence, atomically:
// temp file in the store directory, fsync, rename, directory fsync. After a
// successful write, older snapshots beyond the retention count (2: the new
// snapshot plus one predecessor, so a torn future write always leaves an
// intact fallback) are deleted.
func (s *Store) Save(payload []byte) (seq uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq = s.seq
	s.saves++
	env := Encode(seq, payload)
	hold := s.saves == holdSaveNumber()
	err = writeFileAtomic(s.path(seq), func(w io.Writer) error {
		_, err := w.Write(env)
		return err
	}, func() {
		if hold {
			holdForever(s.dir, s.name+".hold")
		}
	})
	if err != nil {
		return 0, fmt.Errorf("checkpoint: save %s seq %d: %w", s.name, seq, err)
	}
	s.seq++
	s.lastWrite = time.Now()
	metricWrites.Inc()
	metricBytes.Set(float64(len(env)))
	metricAge.Set(0)
	s.prune(seq)
	return seq, nil
}

// prune removes snapshots older than the retention window. Best-effort: an
// undeletable old file costs disk, not correctness.
func (s *Store) prune(latest uint64) {
	seqs, err := s.sequences()
	if err != nil {
		return
	}
	intact := 0
	for i := len(seqs) - 1; i >= 0; i-- {
		if intact >= s.keep && seqs[i] < latest {
			os.Remove(s.path(seqs[i]))
			continue
		}
		intact++
	}
}

// Load returns the payload of the newest intact snapshot, trying each
// snapshot from newest to oldest and skipping any that fail validation —
// so a crash during a checkpoint write (torn temp file or truncated
// rename target) silently falls back to its predecessor. With no snapshot
// files at all it returns ErrNoCheckpoint; when every snapshot is damaged
// it returns the newest one's validation error.
func (s *Store) Load() (payload []byte, seq uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seqs, err := s.sequences()
	if err != nil {
		return nil, 0, err
	}
	if len(seqs) == 0 {
		return nil, 0, fmt.Errorf("%w: %s in %s", ErrNoCheckpoint, s.name, s.dir)
	}
	var firstErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		path := s.path(seqs[i])
		buf, err := os.ReadFile(path)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("checkpoint: %w", err)
			}
			continue
		}
		seq, payload, err := Decode(buf)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", path, err)
			}
			continue
		}
		if fi, err := os.Stat(path); err == nil {
			metricAge.Set(time.Since(fi.ModTime()).Seconds())
		}
		metricResumes.Inc()
		return payload, seq, nil
	}
	return nil, 0, firstErr
}

// SaveResumable snapshots r into the store.
func (s *Store) SaveResumable(r Resumable) error {
	payload, err := r.Snapshot()
	if err != nil {
		return fmt.Errorf("checkpoint: snapshot %s: %w", s.name, err)
	}
	_, err = s.Save(payload)
	return err
}

// RestoreLatest restores r from the newest intact snapshot and reports
// whether one was found: (false, nil) means a fresh start, (true, nil) a
// successful resume. Validation errors from r.Restore (e.g.
// ErrStateMismatch) are returned as-is.
func (s *Store) RestoreLatest(r Resumable) (resumed bool, err error) {
	payload, _, err := s.Load()
	switch {
	case errors.Is(err, ErrNoCheckpoint):
		return false, nil
	case err != nil:
		return false, err
	}
	if err := r.Restore(payload); err != nil {
		return false, err
	}
	return true, nil
}

// TouchAge refreshes the fairco2_checkpoint_age_seconds gauge to the time
// elapsed since this store's most recent write. Long-running loops call it
// between checkpoints so the gauge tracks staleness, not just write events.
func (s *Store) TouchAge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.lastWrite.IsZero() {
		metricAge.Set(time.Since(s.lastWrite).Seconds())
	}
}
