package checkpoint

import (
	"math"
	"testing"
)

func TestUint64sCRCDistinguishesSequences(t *testing.T) {
	base := Uint64sCRC([]uint64{1, 2, 3})
	for name, vals := range map[string][]uint64{
		"reordered": {2, 1, 3},
		"truncated": {1, 2},
		"extended":  {1, 2, 3, 0},
		"mutated":   {1, 2, 4},
	} {
		if got := Uint64sCRC(vals); got == base {
			t.Errorf("%s sequence collided with base fingerprint %08x", name, base)
		}
	}
	if got := Uint64sCRC([]uint64{1, 2, 3}); got != base {
		t.Errorf("fingerprint not deterministic: %08x vs %08x", got, base)
	}
}

func TestFloat64sCRCIsBitExact(t *testing.T) {
	base := Float64sCRC([]float64{1.0, 2.0, 3.0})
	// The smallest representable perturbation must change the key: the
	// fingerprint hashes bit patterns, not rounded renderings.
	bumped := []float64{1.0, 2.0, math.Nextafter(3.0, 4.0)}
	if got := Float64sCRC(bumped); got == base {
		t.Errorf("1-ulp perturbation collided with base fingerprint %08x", base)
	}
	// Negative zero and zero are distinct bit patterns, hence distinct keys.
	if Float64sCRC([]float64{0}) == Float64sCRC([]float64{math.Copysign(0, -1)}) {
		t.Error("0 and -0 produced the same fingerprint")
	}
	// Equality of the bits means equality of the key.
	if got := Float64sCRC([]float64{1.0, 2.0, 3.0}); got != base {
		t.Errorf("fingerprint not deterministic: %08x vs %08x", got, base)
	}
}

func TestFloat64sCRCUpdateChainsToOneShot(t *testing.T) {
	vals := []float64{1.5, -0.25, 0, 42, math.Inf(-1), 3.14}
	want := Float64sCRC(vals)
	for cut := 0; cut <= len(vals); cut++ {
		crc := Float64sCRCUpdate(0, vals[:cut])
		crc = Float64sCRCUpdate(crc, vals[cut:])
		if crc != want {
			t.Errorf("chained CRC with cut at %d = %08x, one-shot %08x", cut, crc, want)
		}
	}
	// Element-at-a-time chaining must agree too.
	crc := uint32(0)
	for i := range vals {
		crc = Float64sCRCUpdate(crc, vals[i:i+1])
	}
	if crc != want {
		t.Errorf("element-wise chained CRC = %08x, one-shot %08x", crc, want)
	}
}

func TestFloat64sCRCMatchesUint64sCRCOnBits(t *testing.T) {
	vals := []float64{3.14, -2.71, 0, math.Inf(1)}
	bits := make([]uint64, len(vals))
	for i, v := range vals {
		bits[i] = math.Float64bits(v)
	}
	if Float64sCRC(vals) != Uint64sCRC(bits) {
		t.Error("Float64sCRC is not the bit-cast of Uint64sCRC")
	}
}
