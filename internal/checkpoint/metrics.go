package checkpoint

import "fairco2/internal/metrics"

// Process-wide checkpoint instrumentation. The counters accumulate across
// every Store in the process; the gauges snapshot the most recent event —
// enough for the dashboards that matter operationally: is the job writing
// checkpoints (rate of writes_total), how big are they (bytes), did a
// restart actually resume (resumes_total), and how stale is the newest
// snapshot if the process dies right now (age_seconds, refreshed by the
// run loops via Store.TouchAge).
var (
	metricWrites = metrics.Default().NewCounter(
		"fairco2_checkpoint_writes_total",
		"Checkpoint snapshots successfully written (after the atomic rename).")
	metricBytes = metrics.Default().NewGauge(
		"fairco2_checkpoint_bytes",
		"Size of the most recently written checkpoint envelope in bytes.")
	metricResumes = metrics.Default().NewCounter(
		"fairco2_checkpoint_resumes_total",
		"Successful loads of an intact snapshot at resume time.")
	metricAge = metrics.Default().NewGauge(
		"fairco2_checkpoint_age_seconds",
		"Seconds since the newest intact checkpoint was written (0 right after a write).")
)
