package interference

import (
	"math"
	"math/rand"
	"testing"

	"fairco2/internal/workload"
)

func characterize(t *testing.T) *workload.Characterization {
	t.Helper()
	c, err := workload.Characterize(workload.Suite())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEstimateMatchesCharacterizationMeans(t *testing.T) {
	c := characterize(t)
	for i := range c.Profiles {
		p, err := Estimate(c, i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.AlphaT-c.MeanSlowdownSuffered(i)) > 1e-12 {
			t.Errorf("workload %d: AlphaT %v != mean suffered %v", i, p.AlphaT, c.MeanSlowdownSuffered(i))
		}
		if math.Abs(p.BetaT-c.MeanSlowdownInflicted(i)) > 1e-12 {
			t.Errorf("workload %d: BetaT %v != mean inflicted %v", i, p.BetaT, c.MeanSlowdownInflicted(i))
		}
		if math.Abs(p.AlphaP-c.MeanEnergyFactorSuffered(i)) > 1e-12 {
			t.Errorf("workload %d: AlphaP mismatch", i)
		}
		if math.Abs(p.BetaP-c.MeanEnergyFactorInflicted(i)) > 1e-12 {
			t.Errorf("workload %d: BetaP mismatch", i)
		}
		if p.Samples != len(c.Profiles) {
			t.Errorf("workload %d: Samples = %d", i, p.Samples)
		}
	}
}

func TestCHProfileReflectsAggressorRole(t *testing.T) {
	c := characterize(t)
	chIdx, err := c.Index(workload.CH)
	if err != nil {
		t.Fatal(err)
	}
	nbodyIdx, err := c.Index(workload.NBODY)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Estimate(c, chIdx)
	if err != nil {
		t.Fatal(err)
	}
	nbody, err := Estimate(c, nbodyIdx)
	if err != nil {
		t.Fatal(err)
	}
	// CH inflicts more than NBODY; NBODY suffers more than CH.
	if ch.BetaT <= nbody.BetaT {
		t.Errorf("CH BetaT %v should exceed NBODY BetaT %v", ch.BetaT, nbody.BetaT)
	}
	if nbody.AlphaT <= ch.AlphaT {
		t.Errorf("NBODY AlphaT %v should exceed CH AlphaT %v", nbody.AlphaT, ch.AlphaT)
	}
}

func TestEstimateFromPartnersSubset(t *testing.T) {
	c := characterize(t)
	p, err := EstimateFromPartners(c, 0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	wantAlpha := (c.RuntimeFactor[0][1] + c.RuntimeFactor[0][2]) / 2
	if math.Abs(p.AlphaT-wantAlpha) > 1e-12 {
		t.Errorf("AlphaT = %v, want %v", p.AlphaT, wantAlpha)
	}
	if p.Samples != 2 {
		t.Errorf("Samples = %d", p.Samples)
	}
}

func TestEstimateErrors(t *testing.T) {
	c := characterize(t)
	if _, err := Estimate(nil, 0); err == nil {
		t.Error("nil characterization")
	}
	if _, err := Estimate(c, -1); err == nil {
		t.Error("negative index")
	}
	if _, err := Estimate(c, len(c.Profiles)); err == nil {
		t.Error("index out of range")
	}
	if _, err := EstimateFromPartners(c, 0, nil); err == nil {
		t.Error("no partners")
	}
	if _, err := EstimateFromPartners(c, 0, []int{99}); err == nil {
		t.Error("partner out of range")
	}
	if _, err := EstimateFromPartners(nil, 0, []int{0}); err == nil {
		t.Error("nil characterization for partners")
	}
}

func TestHistoricalSample(t *testing.T) {
	c := characterize(t)
	rng := rand.New(rand.NewSource(1))
	for k := 1; k <= len(c.Profiles); k++ {
		partners, err := HistoricalSample(c, 0, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(partners) != k {
			t.Fatalf("k=%d: got %d partners", k, len(partners))
		}
		seen := map[int]bool{}
		for _, j := range partners {
			if j < 0 || j >= len(c.Profiles) {
				t.Fatalf("partner %d out of range", j)
			}
			if seen[j] {
				t.Fatalf("duplicate partner %d", j)
			}
			seen[j] = true
		}
	}
}

func TestHistoricalSampleErrors(t *testing.T) {
	c := characterize(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := HistoricalSample(nil, 0, 1, rng); err == nil {
		t.Error("nil characterization")
	}
	if _, err := HistoricalSample(c, 0, 0, rng); err == nil {
		t.Error("k=0")
	}
	if _, err := HistoricalSample(c, 0, len(c.Profiles)+1, rng); err == nil {
		t.Error("k too large")
	}
	if _, err := HistoricalSample(c, 0, 1, nil); err == nil {
		t.Error("nil rng")
	}
}

func TestSparseEstimateApproachesFull(t *testing.T) {
	// Averaging sparse estimates over many draws converges to the
	// full-history estimate — the mechanism behind Figure 8b's result
	// that even one sample helps.
	c := characterize(t)
	full, err := Estimate(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const draws = 2000
	sumAlpha := 0.0
	for d := 0; d < draws; d++ {
		partners, err := HistoricalSample(c, 3, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := EstimateFromPartners(c, 3, partners)
		if err != nil {
			t.Fatal(err)
		}
		sumAlpha += p.AlphaT
	}
	if got := sumAlpha / draws; math.Abs(got-full.AlphaT) > 0.02 {
		t.Errorf("mean sparse AlphaT %v far from full %v", got, full.AlphaT)
	}
}

func TestFactors(t *testing.T) {
	p := Profile{AlphaT: 1.2, BetaT: 1.3, AlphaP: 1.1, BetaP: 1.15}
	if got := p.FixedCostFactor(48); math.Abs(got-2.5*48) > 1e-12 {
		t.Errorf("FixedCostFactor = %v", got)
	}
	if got := p.DynamicEnergyFactor(100); math.Abs(got-2.25*100) > 1e-12 {
		t.Errorf("DynamicEnergyFactor = %v", got)
	}
}

func TestEstimateAll(t *testing.T) {
	c := characterize(t)
	all, err := EstimateAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(c.Profiles) {
		t.Fatalf("got %d profiles", len(all))
	}
	for i, p := range all {
		if p.AlphaT < 1 || p.BetaT < 1 {
			t.Errorf("workload %d: implausible profile %+v", i, p)
		}
	}
	if _, err := EstimateAll(nil); err == nil {
		t.Error("nil characterization")
	}
}
