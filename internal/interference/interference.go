// Package interference implements Fair-CO2's interference-aware adjustment
// (paper §5.2). From historical colocation data — the pairwise
// characterization matrix of package workload — it estimates, per workload:
//
//   - alpha_T: the average slowdown the workload suffers under colocation,
//   - beta_T:  the average slowdown it inflicts on partners,
//   - alpha_P / beta_P: the same two quantities for dynamic energy,
//
// and combines them into attribution factors (Eq. 8 and Eq. 10):
//
//	f_Q = (alpha_T + beta_T) * Q       (embodied / fixed costs)
//	f_P = (alpha_P + beta_P) * P_iso   (dynamic energy)
//
// Within a node or time slice, fixed carbon and dynamic energy are then
// attributed proportional to these factors. The paper evaluates robustness
// to sparse history (Figure 8b/f) by conditioning each estimate on a random
// subset of partners; HistoricalSample models that sampling.
package interference

import (
	"errors"
	"fmt"
	"math/rand"

	"fairco2/internal/units"
	"fairco2/internal/workload"
)

// Profile is a workload's interference profile estimated from historical
// colocation observations.
type Profile struct {
	// AlphaT is the mean runtime slowdown suffered under colocation.
	AlphaT float64
	// BetaT is the mean runtime slowdown inflicted on partners.
	BetaT float64
	// AlphaP is the mean dynamic-energy factor suffered under colocation.
	AlphaP float64
	// BetaP is the mean dynamic-energy factor inflicted on partners.
	BetaP float64
	// Samples is the number of historical partners the estimate used.
	Samples int
}

// FixedCostFactor returns f_Q (Eq. 8) for a resource allocation q.
func (p Profile) FixedCostFactor(q float64) float64 {
	return (p.AlphaT + p.BetaT) * q
}

// DynamicEnergyFactor returns f_P (Eq. 10) for isolated power pIso.
func (p Profile) DynamicEnergyFactor(pIso units.Watts) float64 {
	return (p.AlphaP + p.BetaP) * float64(pIso)
}

// Estimate computes workload i's profile from the full characterization —
// the 100%-sampling-rate case.
func Estimate(c *workload.Characterization, i int) (Profile, error) {
	if c == nil {
		return Profile{}, errors.New("interference: nil characterization")
	}
	if i < 0 || i >= len(c.Profiles) {
		return Profile{}, fmt.Errorf("interference: workload index %d out of range", i)
	}
	all := make([]int, len(c.Profiles))
	for j := range all {
		all[j] = j
	}
	return EstimateFromPartners(c, i, all)
}

// EstimateFromPartners computes workload i's profile using only the listed
// historical partners, modeling sparse history.
func EstimateFromPartners(c *workload.Characterization, i int, partners []int) (Profile, error) {
	if c == nil {
		return Profile{}, errors.New("interference: nil characterization")
	}
	if i < 0 || i >= len(c.Profiles) {
		return Profile{}, fmt.Errorf("interference: workload index %d out of range", i)
	}
	if len(partners) == 0 {
		return Profile{}, errors.New("interference: need at least one historical partner")
	}
	var p Profile
	for _, j := range partners {
		if j < 0 || j >= len(c.Profiles) {
			return Profile{}, fmt.Errorf("interference: partner index %d out of range", j)
		}
		p.AlphaT += c.RuntimeFactor[i][j]
		p.BetaT += c.RuntimeFactor[j][i]
		p.AlphaP += c.DynEnergyFactor[i][j]
		p.BetaP += c.DynEnergyFactor[j][i]
	}
	n := float64(len(partners))
	p.AlphaT /= n
	p.BetaT /= n
	p.AlphaP /= n
	p.BetaP /= n
	p.Samples = len(partners)
	return p, nil
}

// HistoricalSample draws a uniform random subset of k distinct partners for
// workload i (the Figure 8b/f sampling-rate experiment: k from 1 to the
// full suite). The workload itself may appear as a partner — self-
// colocation is a valid historical observation.
func HistoricalSample(c *workload.Characterization, i, k int, rng *rand.Rand) ([]int, error) {
	if c == nil {
		return nil, errors.New("interference: nil characterization")
	}
	if rng == nil {
		return nil, errors.New("interference: nil rng")
	}
	n := len(c.Profiles)
	if k < 1 || k > n {
		return nil, fmt.Errorf("interference: sample size %d outside [1, %d]", k, n)
	}
	perm := rng.Perm(n)
	return perm[:k], nil
}

// EstimateAll computes full-history profiles for every workload in the
// characterization.
func EstimateAll(c *workload.Characterization) ([]Profile, error) {
	if c == nil {
		return nil, errors.New("interference: nil characterization")
	}
	out := make([]Profile, len(c.Profiles))
	for i := range c.Profiles {
		p, err := Estimate(c, i)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}
