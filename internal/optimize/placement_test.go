package optimize

import (
	"fmt"
	"math"
	"testing"

	"fairco2/internal/units"
)

func placementFixture() ([]RegionCost, []TenantLoad) {
	regions := []RegionCost{
		{Provider: "aurora", Region: "us-west", MeanCI: 230, WattsPerCore: 4.3, PUE: 1.2, EmbodiedPerCoreSecond: 2e-4},
		{Provider: "borealis", Region: "eu-north", MeanCI: 25, WattsPerCore: 4.3, PUE: 1.1, EmbodiedPerCoreSecond: 3e-4},
		{Provider: "cirrus", Region: "ap-south", MeanCI: 710, WattsPerCore: 4.5, PUE: 1.4, EmbodiedPerCoreSecond: 1.5e-4},
	}
	loads := []TenantLoad{
		{Tenant: "t0", Region: "ap-south", CoreSeconds: 4e6},
		{Tenant: "t1", Region: "us-west", CoreSeconds: 1e6},
		{Tenant: "t2", Region: "eu-north", CoreSeconds: 9e6},
		{Tenant: "t3", Region: "ap-south", CoreSeconds: 5e5},
	}
	return regions, loads
}

func TestPlacementSweepFront(t *testing.T) {
	regions, loads := placementFixture()
	front, err := PlacementSweep(regions, loads, 8)
	if err != nil {
		t.Fatal(err)
	}
	// t2 already sits in the cheapest region; the other three can move.
	if len(front) != 4 {
		t.Fatalf("front has %d points, want 4", len(front))
	}
	for k, p := range front {
		if p.Moves != k {
			t.Errorf("point %d labeled %d moves", k, p.Moves)
		}
		if len(p.Plan) != k {
			t.Errorf("point %d plan has %d moves", k, len(p.Plan))
		}
		if k > 0 {
			if p.TotalGrams >= front[k-1].TotalGrams {
				t.Errorf("front not strictly improving at %d: %v -> %v", k, front[k-1].TotalGrams, p.TotalGrams)
			}
			if k > 1 && p.Plan[k-1].SavingGrams > p.Plan[k-2].SavingGrams {
				t.Errorf("moves not ordered by descending saving at %d", k)
			}
		}
	}
	// The greedy order must put the biggest saver first: t0 has 4x the
	// load of t3 in the same dirty region.
	if front[1].Plan[0].Tenant != "t0" || front[1].Plan[0].To != "eu-north" {
		t.Errorf("first move = %+v, want t0 -> eu-north", front[1].Plan[0])
	}
	// Every move's saving matches the price difference exactly.
	price := map[string]float64{}
	for _, r := range regions {
		price[r.Region] = r.CarbonPerCoreSecond()
	}
	cs := map[string]float64{"t0": 4e6, "t1": 1e6, "t2": 9e6, "t3": 5e5}
	for _, m := range front[len(front)-1].Plan {
		want := (price[m.From] - price[m.To]) * cs[m.Tenant]
		if math.Abs(m.SavingGrams-want) > 1e-9*want {
			t.Errorf("move %s saving %v, want %v", m.Tenant, m.SavingGrams, want)
		}
	}
}

func TestPlacementSweepDeterministic(t *testing.T) {
	regions, loads := placementFixture()
	a, err := PlacementSweep(regions, loads, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlacementSweep(regions, loads, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("placement sweep must be deterministic")
	}
}

func TestPlacementSweepMoveCap(t *testing.T) {
	regions, loads := placementFixture()
	front, err := PlacementSweep(regions, loads, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) != 2 {
		t.Fatalf("capped front has %d points, want 2", len(front))
	}
	full, err := PlacementSweep(regions, loads, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The capped front is a prefix of the full one.
	for k := range front {
		if front[k].TotalGrams != full[k].TotalGrams {
			t.Errorf("capped point %d total %v, full %v", k, front[k].TotalGrams, full[k].TotalGrams)
		}
	}
	zero, err := PlacementSweep(regions, loads, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(zero) != 1 || len(zero[0].Plan) != 0 {
		t.Fatalf("maxMoves=0 front = %+v, want baseline only", zero)
	}
}

func TestPlacementSweepTieBreaks(t *testing.T) {
	regions := []RegionCost{
		{Region: "a", MeanCI: 100, WattsPerCore: 4, PUE: 1.2},
		{Region: "b", MeanCI: 10, WattsPerCore: 4, PUE: 1.2},
		// Same price as b: the tie must resolve to b by name.
		{Region: "c", MeanCI: 10, WattsPerCore: 4, PUE: 1.2},
	}
	loads := []TenantLoad{
		{Tenant: "y", Region: "a", CoreSeconds: 1000},
		{Tenant: "x", Region: "a", CoreSeconds: 1000},
	}
	front, err := PlacementSweep(regions, loads, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := front[len(front)-1].Plan
	if len(plan) != 2 {
		t.Fatalf("plan has %d moves, want 2", len(plan))
	}
	// Equal savings: tenant name breaks the tie; equal-price targets
	// resolve to the lexicographically first region.
	if plan[0].Tenant != "x" || plan[1].Tenant != "y" {
		t.Errorf("tie-break order %s, %s; want x, y", plan[0].Tenant, plan[1].Tenant)
	}
	for _, m := range plan {
		if m.To != "b" {
			t.Errorf("tenant %s moved to %s, want b", m.Tenant, m.To)
		}
	}
}

func TestPlacementSweepErrors(t *testing.T) {
	regions, loads := placementFixture()
	if _, err := PlacementSweep(nil, loads, 4); err == nil {
		t.Error("no regions: expected error")
	}
	if _, err := PlacementSweep(regions, loads, -1); err == nil {
		t.Error("negative cap: expected error")
	}
	if _, err := PlacementSweep(append(regions[:2:2], regions[0]), nil, 4); err == nil {
		t.Error("duplicate region: expected error")
	}
	bad := append([]TenantLoad(nil), loads...)
	bad[0].Region = "atlantis"
	if _, err := PlacementSweep(regions, bad, 4); err == nil {
		t.Error("unknown region: expected error")
	}
	bad = append([]TenantLoad(nil), loads...)
	bad[1].CoreSeconds = -1
	if _, err := PlacementSweep(regions, bad, 4); err == nil {
		t.Error("negative load: expected error")
	}
	for _, r := range []RegionCost{
		{},
		{Region: "x", MeanCI: -1, PUE: 1.1},
		{Region: "x", MeanCI: 10, PUE: 0.9},
		{Region: "x", MeanCI: 10, PUE: 1.1, WattsPerCore: math.NaN()},
		{Region: "x", MeanCI: 10, PUE: 1.1, EmbodiedPerCoreSecond: -1},
	} {
		if err := r.Validate(); err == nil {
			t.Errorf("region cost %+v: expected error", r)
		}
	}
}

func TestRegionCostCarbonPerCoreSecond(t *testing.T) {
	r := RegionCost{Region: "x", MeanCI: 360, WattsPerCore: 10, PUE: 1.5, EmbodiedPerCoreSecond: 0.001}
	// 10 W x 1.5 PUE for 1 s = 15 J = 15/3.6e6 kWh; at 360 g/kWh that is
	// 0.0015 g operational, plus 0.001 g embodied.
	want := 15.0/3.6e6*360 + 0.001
	if got := r.CarbonPerCoreSecond(); math.Abs(got-want) > 1e-12 {
		t.Errorf("CarbonPerCoreSecond = %v, want %v", got, want)
	}
}

func BenchmarkPlacementSweep(b *testing.B) {
	regions, _ := placementFixture()
	loads := make([]TenantLoad, 200)
	for i := range loads {
		loads[i] = TenantLoad{
			Tenant:      fmt.Sprintf("t%03d", i),
			Region:      regions[i%len(regions)].Region,
			CoreSeconds: units.CoreSeconds(1e5 * float64(1+i%7)),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlacementSweep(regions, loads, 32); err != nil {
			b.Fatal(err)
		}
	}
}
