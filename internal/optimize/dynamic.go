package optimize

import (
	"errors"
	"fmt"

	"fairco2/internal/grid"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// DynamicConfig parameterizes the Figure 13 week-long dynamic workload
// adjustment simulation.
type DynamicConfig struct {
	// Models are the candidate serving algorithms (IVF, HNSW).
	Models []ServingModel
	// Space is the configuration grid.
	Space SweepSpace
	// SLO is the tail-latency target (paper: 2 s, from MLPerf's server
	// latency target for LLM Q&A where FAISS indices back RAG).
	SLO units.Seconds
	// Step is the reconfiguration interval (paper: live 5-minute
	// signals).
	Step units.Seconds
	// Duration is the simulated horizon (paper: one week).
	Duration units.Seconds
}

// DefaultDynamicConfig returns the paper's case-study parameters.
func DefaultDynamicConfig() DynamicConfig {
	return DynamicConfig{
		Models:   ServingModels(),
		Space:    ServingSweepSpace(),
		SLO:      2,
		Step:     300,
		Duration: 7 * units.SecondsPerDay,
	}
}

// DynamicStep records one reconfiguration interval.
type DynamicStep struct {
	Time          units.Seconds
	GridCI        units.CarbonIntensity
	EmbodiedScale float64
	// Chosen is the carbon-optimal configuration under the SLO.
	Chosen ServingPoint
	// Static is the fixed performance-optimal configuration's cost at
	// this step's intensities.
	Static ServingPoint
}

// DynamicResult summarizes the simulation.
type DynamicResult struct {
	Steps []DynamicStep
	// OptimizedCarbonPerQuery and StaticCarbonPerQuery are time-averaged
	// per-query footprints of the adaptive policy and of holding the
	// performance-optimal configuration.
	OptimizedCarbonPerQuery units.GramsCO2e
	StaticCarbonPerQuery    units.GramsCO2e
	// Savings is the fractional reduction (paper: 38.4%).
	Savings float64
	// AlgorithmSwitches counts IVF <-> HNSW changes.
	AlgorithmSwitches int
}

// DynamicWeek simulates dynamic reconfiguration against a live grid
// carbon-intensity signal and a live embodied-intensity multiplier
// (mean-1 shape from Temporal Shapley over a demand trace). At every step
// the carbon-optimal configuration under the SLO is selected; the baseline
// holds the latency-optimal configuration throughout.
func DynamicWeek(cost *CostModel, gridSignal grid.Signal, embodiedScale *timeseries.Series, cfg DynamicConfig) (*DynamicResult, error) {
	if cost == nil {
		return nil, errors.New("optimize: nil cost model")
	}
	if gridSignal == nil {
		return nil, errors.New("optimize: nil grid signal")
	}
	if embodiedScale == nil || embodiedScale.Len() == 0 {
		return nil, errors.New("optimize: empty embodied scale signal")
	}
	if cfg.Step <= 0 || cfg.Duration < cfg.Step {
		return nil, fmt.Errorf("optimize: invalid step %v / duration %v", cfg.Step, cfg.Duration)
	}
	if cfg.SLO <= 0 {
		return nil, errors.New("optimize: SLO must be positive")
	}

	// The latency-optimal configuration is intensity-independent.
	probe, err := SweepServing(cfg.Models, cfg.Space, cost, 0, 1)
	if err != nil {
		return nil, err
	}
	fastest, err := FastestPoint(probe)
	if err != nil {
		return nil, err
	}
	fastModel, err := modelByName(cfg.Models, fastest.Algorithm)
	if err != nil {
		return nil, err
	}

	steps := int(float64(cfg.Duration) / float64(cfg.Step))
	result := &DynamicResult{Steps: make([]DynamicStep, 0, steps)}
	var optSum, staticSum float64
	prevAlg := ""
	for i := 0; i < steps; i++ {
		t := units.Seconds(float64(cfg.Step) * float64(i))
		ci := gridSignal.At(t)
		scale := embodiedScale.At(t)

		points, err := SweepServing(cfg.Models, cfg.Space, cost, ci, scale)
		if err != nil {
			return nil, err
		}
		chosen, err := BestUnderSLO(points, cfg.SLO)
		if err != nil {
			return nil, fmt.Errorf("optimize: step %d: %w", i, err)
		}

		staticBd := cost.Carbon(fastest.Cores, fastModel.IndexGB, fastest.TailLatency, fastModel.DynPower(fastest.Cores), ci, scale)
		static := fastest
		static.CarbonPerQuery = units.GramsCO2e(float64(staticBd.Total()) / float64(fastest.Batch))

		result.Steps = append(result.Steps, DynamicStep{
			Time: t, GridCI: ci, EmbodiedScale: scale,
			Chosen: chosen, Static: static,
		})
		optSum += float64(chosen.CarbonPerQuery)
		staticSum += float64(static.CarbonPerQuery)
		if prevAlg != "" && prevAlg != chosen.Algorithm {
			result.AlgorithmSwitches++
		}
		prevAlg = chosen.Algorithm
	}
	n := float64(len(result.Steps))
	result.OptimizedCarbonPerQuery = units.GramsCO2e(optSum / n)
	result.StaticCarbonPerQuery = units.GramsCO2e(staticSum / n)
	if staticSum > 0 {
		result.Savings = 1 - optSum/staticSum
	}
	return result, nil
}

func modelByName(models []ServingModel, name string) (ServingModel, error) {
	for _, m := range models {
		if m.Algorithm == name {
			return m, nil
		}
	}
	return ServingModel{}, fmt.Errorf("optimize: unknown algorithm %q", name)
}

// NormalizedEmbodiedShape converts a Temporal Shapley intensity signal to
// a mean-1 multiplier for DynamicWeek.
func NormalizedEmbodiedShape(intensity *timeseries.Series) (*timeseries.Series, error) {
	if intensity == nil || intensity.Len() == 0 {
		return nil, errors.New("optimize: empty intensity signal")
	}
	mean := intensity.Mean()
	if mean <= 0 {
		return nil, errors.New("optimize: intensity signal has non-positive mean")
	}
	return intensity.Scale(1 / mean), nil
}
