package optimize

import (
	"errors"
	"sort"

	"fairco2/internal/units"
)

// ServingPoint is one FAISS serving configuration with its modeled tail
// latency and per-query carbon at a fixed grid intensity.
type ServingPoint struct {
	Algorithm      string
	Cores          int
	Batch          int
	TailLatency    units.Seconds
	CarbonPerQuery units.GramsCO2e
}

// SweepServing enumerates every (model, cores, batch) configuration and
// evaluates per-query carbon at the given grid intensity. embodiedScale
// multiplies the embodied rates (1 for uniform amortization; the live
// Temporal Shapley multiplier for dynamic optimization).
func SweepServing(models []ServingModel, space SweepSpace, cost *CostModel, ci units.CarbonIntensity, embodiedScale float64) ([]ServingPoint, error) {
	if cost == nil {
		return nil, errors.New("optimize: nil cost model")
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if len(space.Batches) == 0 {
		return nil, errors.New("optimize: serving sweep needs batch choices")
	}
	if len(models) == 0 {
		return nil, errors.New("optimize: no serving models")
	}
	if ci < 0 {
		return nil, errors.New("optimize: negative grid intensity")
	}
	if embodiedScale < 0 {
		return nil, errors.New("optimize: negative embodied scale")
	}
	var points []ServingPoint
	for _, m := range models {
		for _, c := range space.Cores {
			for _, b := range space.Batches {
				lat, err := m.BatchLatency(c, b)
				if err != nil {
					return nil, err
				}
				bd := cost.Carbon(c, m.IndexGB, lat, m.DynPower(c), ci, embodiedScale)
				points = append(points, ServingPoint{
					Algorithm:      m.Algorithm,
					Cores:          c,
					Batch:          b,
					TailLatency:    lat,
					CarbonPerQuery: units.GramsCO2e(float64(bd.Total()) / float64(b)),
				})
			}
		}
	}
	return points, nil
}

// Pareto returns the Pareto-optimal subset minimizing both tail latency
// and per-query carbon, sorted by ascending latency (Figure 12's fronts).
func Pareto(points []ServingPoint) []ServingPoint {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]ServingPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].TailLatency != sorted[j].TailLatency {
			return sorted[i].TailLatency < sorted[j].TailLatency
		}
		return sorted[i].CarbonPerQuery < sorted[j].CarbonPerQuery
	})
	var front []ServingPoint
	bestCarbon := units.GramsCO2e(0)
	for _, p := range sorted {
		if len(front) == 0 || p.CarbonPerQuery < bestCarbon {
			front = append(front, p)
			bestCarbon = p.CarbonPerQuery
		}
	}
	return front
}

// BestUnderSLO returns the minimum-carbon configuration meeting the
// tail-latency SLO.
func BestUnderSLO(points []ServingPoint, slo units.Seconds) (ServingPoint, error) {
	var best *ServingPoint
	for i := range points {
		p := &points[i]
		if p.TailLatency > slo {
			continue
		}
		if best == nil || p.CarbonPerQuery < best.CarbonPerQuery {
			best = p
		}
	}
	if best == nil {
		return ServingPoint{}, errors.New("optimize: no configuration meets the SLO")
	}
	return *best, nil
}

// FastestPoint returns the latency-optimal configuration.
func FastestPoint(points []ServingPoint) (ServingPoint, error) {
	if len(points) == 0 {
		return ServingPoint{}, errors.New("optimize: no points")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.TailLatency < best.TailLatency {
			best = p
		}
	}
	return best, nil
}

// AlgorithmCrossover finds the grid intensity at which the carbon-optimal
// algorithm under the SLO switches, scanning intensities in steps of
// stepCI. It returns the first intensity whose optimal algorithm differs
// from the one at fromCI, or an error if no switch occurs by toCI.
// The paper reports IVF -> HNSW around 90 gCO2e/kWh.
func AlgorithmCrossover(models []ServingModel, space SweepSpace, cost *CostModel, slo units.Seconds, fromCI, toCI, stepCI units.CarbonIntensity) (units.CarbonIntensity, error) {
	if stepCI <= 0 || toCI < fromCI {
		return 0, errors.New("optimize: invalid crossover scan range")
	}
	baseline := ""
	for ci := fromCI; ci <= toCI; ci += stepCI {
		points, err := SweepServing(models, space, cost, ci, 1)
		if err != nil {
			return 0, err
		}
		best, err := BestUnderSLO(points, slo)
		if err != nil {
			return 0, err
		}
		if baseline == "" {
			baseline = best.Algorithm
			continue
		}
		if best.Algorithm != baseline {
			return ci, nil
		}
	}
	return 0, errors.New("optimize: no algorithm crossover in scan range")
}
