package optimize

import (
	"errors"

	"fairco2/internal/carbon"
	"fairco2/internal/units"
)

// smtThreadsPerCore reflects the evaluation CPUs (Cascade Lake, SMT-2):
// the paper's configuration sweeps address logical cores (up to 96 on a
// 48-physical-core node), so per-core embodied rates and static-power
// shares are normalized by logical cores.
const smtThreadsPerCore = 2

// CostModel converts a configuration and runtime into carbon, using the
// reference server's per-resource embodied rates and power model.
type CostModel struct {
	server *carbon.Server
	// logicalCores is the schedulable core count of one node.
	logicalCores int
	// coreRate and gbRate are amortized embodied gCO2e per logical
	// core-second and per GB-second.
	coreRate, gbRate float64
}

// NewCostModel builds the cost model over a server.
func NewCostModel(server *carbon.Server) (*CostModel, error) {
	if server == nil {
		return nil, errors.New("optimize: nil server")
	}
	physCoreRate, err := server.EmbodiedRatePerCore()
	if err != nil {
		return nil, err
	}
	gbRate, err := server.EmbodiedRatePerGB()
	if err != nil {
		return nil, err
	}
	return &CostModel{
		server:       server,
		logicalCores: server.Cores * smtThreadsPerCore,
		coreRate:     physCoreRate / smtThreadsPerCore,
		gbRate:       gbRate,
	}, nil
}

// Breakdown separates a configuration's carbon into the paper's
// components.
type Breakdown struct {
	// Embodied is amortized manufacturing carbon (core- and GB-seconds).
	Embodied units.GramsCO2e
	// Static is the operational carbon of the allocation's share of node
	// static power.
	Static units.GramsCO2e
	// Dynamic is the operational carbon of dynamic energy.
	Dynamic units.GramsCO2e
}

// Total returns the summed footprint.
func (b Breakdown) Total() units.GramsCO2e { return b.Embodied + b.Static + b.Dynamic }

// Operational returns static plus dynamic carbon.
func (b Breakdown) Operational() units.GramsCO2e { return b.Static + b.Dynamic }

// Energy returns the operational energy (static share + dynamic) of a
// configuration held for a duration.
func (c *CostModel) Energy(cores int, dynPower units.Watts, duration units.Seconds) units.Joules {
	staticShare := units.Watts(float64(c.server.StaticPower) * float64(cores) / float64(c.logicalCores))
	return units.Energy(staticShare+dynPower, duration)
}

// Carbon returns the footprint of holding (cores, memGB) for duration at
// average dynamic power dynPower, under grid intensity ci. embodiedScale
// multiplies the embodied rates — 1 for uniform amortization, or the
// Temporal Shapley live intensity multiplier for Figure 13.
func (c *CostModel) Carbon(cores int, memGB float64, duration units.Seconds, dynPower units.Watts, ci units.CarbonIntensity, embodiedScale float64) Breakdown {
	embodied := (c.coreRate*float64(cores) + c.gbRate*memGB) * float64(duration) * embodiedScale
	staticShare := units.Watts(float64(c.server.StaticPower) * float64(cores) / float64(c.logicalCores))
	static := units.Emissions(units.Energy(staticShare, duration), ci)
	dynamic := units.Emissions(units.Energy(dynPower, duration), ci)
	return Breakdown{
		Embodied: units.GramsCO2e(embodied),
		Static:   static,
		Dynamic:  dynamic,
	}
}
