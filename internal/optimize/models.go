// Package optimize implements the paper's workload carbon-optimization
// case study (§8, Figures 10, 12, 13): analytic configuration-performance
// models for the batch workloads (PBBS, Spark) and the FAISS serving
// workload, a carbon cost model over grid and embodied intensities,
// configuration sweeps, Pareto fronts, and the week-long dynamic
// reconfiguration simulation.
//
// The models are synthetic stand-ins for the paper's measured sweeps
// (DESIGN.md documents the substitution) but encode the scaling behaviours
// §8 reports: good-but-sublinear parallel scaling, dynamic energy per unit
// CPU utilization decreasing with core count (SMT), memory-flexible
// workloads (WC, NBODY, SPARK), IVF's superior core scaling versus HNSW's
// lower power and larger index (77.7 GB vs 180.8 GB).
package optimize

import (
	"errors"
	"fmt"
	"math"

	"fairco2/internal/units"
)

// BatchModel is the configuration-performance model of a run-to-completion
// workload swept over cores and memory (Figure 10).
type BatchModel struct {
	Name string
	// SerialSeconds is the non-parallelizable runtime.
	SerialSeconds float64
	// ParallelWork is the parallelizable work in core-seconds; runtime
	// contribution is ParallelWork / cores^ScalingExp.
	ParallelWork float64
	// ScalingExp < 1 gives the sub-linear scaling §8 describes.
	ScalingExp float64
	// WorkingSetGB is the natural memory footprint.
	WorkingSetGB float64
	// MinMemoryGB is the smallest allocation that still completes.
	MinMemoryGB float64
	// MemPenalty scales the slowdown of running below the working set
	// (spilling); 0 means the workload cannot trade memory.
	MemPenalty float64
	// PowerPerCore scales dynamic power: P(c) = PowerPerCore * c^0.85.
	PowerPerCore float64
	// SaturationCores is where parallel scaling mostly stops (memory
	// bandwidth, hyperthreading); beyond it runtime improves only
	// marginally. 0 means no saturation.
	SaturationCores int
}

// saturationTailExp is the residual scaling exponent past saturation:
// runtime still improves slightly, so the performance-optimal
// configuration remains the largest one, but at rapidly diminishing
// returns — the regime where carbon optimization pays (§8).
const saturationTailExp = 0.1

// effectiveCores applies the saturation model.
func (m BatchModel) effectiveCores(cores int) float64 {
	c := float64(cores)
	if m.SaturationCores > 0 && cores > m.SaturationCores {
		sat := float64(m.SaturationCores)
		return sat * math.Pow(c/sat, saturationTailExp)
	}
	return c
}

// powerScalingExp < 1 models simultaneous multithreading: the marginal
// core draws less power, so J per %-second falls as cores grow (§8).
const powerScalingExp = 0.85

// Runtime returns the modeled runtime at a configuration.
func (m BatchModel) Runtime(cores int, memGB float64) (units.Seconds, error) {
	if cores < 1 {
		return 0, fmt.Errorf("optimize: %s: cores must be positive", m.Name)
	}
	if memGB < m.MinMemoryGB {
		return 0, fmt.Errorf("optimize: %s: %v GB below minimum %v GB", m.Name, memGB, m.MinMemoryGB)
	}
	t := m.SerialSeconds + m.ParallelWork/math.Pow(m.effectiveCores(cores), m.ScalingExp)
	if memGB < m.WorkingSetGB {
		deficit := (m.WorkingSetGB - memGB) / m.WorkingSetGB
		t *= 1 + m.MemPenalty*deficit*deficit*4
	}
	return units.Seconds(t), nil
}

// DynPower returns the modeled average dynamic power at a core count.
func (m BatchModel) DynPower(cores int) units.Watts {
	return units.Watts(m.PowerPerCore * math.Pow(float64(cores), powerScalingExp))
}

// BatchModels returns the nine batch workloads of the Figure 10 sweep
// (eight PBBS kernels plus Spark). WC, NBODY and SPARK are the
// memory-flexible ones the paper calls out.
func BatchModels() []BatchModel {
	return []BatchModel{
		{Name: "DDUP", SerialSeconds: 12, ParallelWork: 4200, ScalingExp: 0.92, WorkingSetGB: 64, MinMemoryGB: 48, MemPenalty: 0, PowerPerCore: 6.0, SaturationCores: 64},
		{Name: "BFS", SerialSeconds: 30, ParallelWork: 9500, ScalingExp: 0.88, WorkingSetGB: 96, MinMemoryGB: 72, MemPenalty: 0, PowerPerCore: 5.5, SaturationCores: 48},
		{Name: "MSF", SerialSeconds: 45, ParallelWork: 13000, ScalingExp: 0.87, WorkingSetGB: 120, MinMemoryGB: 96, MemPenalty: 0, PowerPerCore: 5.6, SaturationCores: 48},
		{Name: "WC", SerialSeconds: 8, ParallelWork: 7200, ScalingExp: 0.94, WorkingSetGB: 80, MinMemoryGB: 16, MemPenalty: 0.6, PowerPerCore: 6.4, SaturationCores: 80},
		{Name: "SA", SerialSeconds: 60, ParallelWork: 15000, ScalingExp: 0.86, WorkingSetGB: 150, MinMemoryGB: 120, MemPenalty: 0, PowerPerCore: 6.0, SaturationCores: 48},
		{Name: "CH", SerialSeconds: 15, ParallelWork: 8000, ScalingExp: 0.9, WorkingSetGB: 72, MinMemoryGB: 56, MemPenalty: 0, PowerPerCore: 6.8, SaturationCores: 64},
		{Name: "NN", SerialSeconds: 25, ParallelWork: 11500, ScalingExp: 0.89, WorkingSetGB: 88, MinMemoryGB: 64, MemPenalty: 0, PowerPerCore: 5.8, SaturationCores: 56},
		{Name: "NBODY", SerialSeconds: 5, ParallelWork: 9600, ScalingExp: 0.95, WorkingSetGB: 40, MinMemoryGB: 8, MemPenalty: 0.5, PowerPerCore: 7.2, SaturationCores: 0},
		{Name: "SPARK", SerialSeconds: 50, ParallelWork: 12500, ScalingExp: 0.85, WorkingSetGB: 128, MinMemoryGB: 32, MemPenalty: 0.8, PowerPerCore: 5.8, SaturationCores: 48},
	}
}

// ServingModel is the configuration-performance model of a FAISS retrieval
// index swept over cores and batch size (Figures 12 and 13).
type ServingModel struct {
	// Algorithm is "IVF" or "HNSW".
	Algorithm string
	// IndexGB is the resident index size (§8: 77.7 vs 180.8 GB).
	IndexGB float64
	// SetupSeconds is the per-batch fixed overhead.
	SetupSeconds float64
	// PerQueryWork is the per-query work in core-seconds at batch size 1;
	// batching amortizes it (see batchWorkExp).
	PerQueryWork float64
	// ScalingExp < 1 is the core-scaling exponent.
	ScalingExp float64
	// MaxUsefulCores caps effective parallelism (§8: HNSW stops scaling
	// past 88 cores).
	MaxUsefulCores int
	// PowerPerCore scales dynamic power as in BatchModel.
	PowerPerCore float64
}

// ServingModels returns the two FAISS indices.
func ServingModels() []ServingModel {
	return []ServingModel{
		{
			Algorithm:      "IVF",
			IndexGB:        77.7,
			SetupSeconds:   0.012,
			PerQueryWork:   1.15,
			ScalingExp:     0.95,
			MaxUsefulCores: 96,
			PowerPerCore:   4.6,
		},
		{
			Algorithm:      "HNSW",
			IndexGB:        180.8,
			SetupSeconds:   0.05,
			PerQueryWork:   0.95,
			ScalingExp:     0.92,
			MaxUsefulCores: 88,
			PowerPerCore:   3.6,
		},
	}
}

// batchWorkExp < 1 models batching efficiency (SIMD, cache reuse, fewer
// index traversals per query): processing a batch of b queries costs
// b^batchWorkExp units of work, so per-query throughput improves with
// batch size at the price of tail latency — the Figure 12 trade-off.
const batchWorkExp = 0.85

// BatchLatency returns the time to process one batch — the tail-latency
// proxy used for the SLO (queries admitted at the start of a batch wait a
// full batch time).
func (m ServingModel) BatchLatency(cores, batch int) (units.Seconds, error) {
	if cores < 1 {
		return 0, fmt.Errorf("optimize: %s: cores must be positive", m.Algorithm)
	}
	if batch < 1 {
		return 0, fmt.Errorf("optimize: %s: batch must be positive", m.Algorithm)
	}
	eff := cores
	if eff > m.MaxUsefulCores {
		eff = m.MaxUsefulCores
	}
	work := math.Pow(float64(batch), batchWorkExp) * m.PerQueryWork
	t := m.SetupSeconds + work/math.Pow(float64(eff), m.ScalingExp)
	return units.Seconds(t), nil
}

// Throughput returns queries per second at a configuration.
func (m ServingModel) Throughput(cores, batch int) (float64, error) {
	lat, err := m.BatchLatency(cores, batch)
	if err != nil {
		return 0, err
	}
	return float64(batch) / float64(lat), nil
}

// DynPower returns the modeled dynamic power at a core count.
func (m ServingModel) DynPower(cores int) units.Watts {
	eff := cores
	if eff > m.MaxUsefulCores {
		eff = m.MaxUsefulCores
	}
	return units.Watts(m.PowerPerCore * math.Pow(float64(eff), powerScalingExp))
}

// SweepSpace enumerates the paper's configuration grids.
type SweepSpace struct {
	Cores    []int
	MemoryGB []float64
	Batches  []int
}

// BatchSweepSpace is the Figure 10 grid: 8-96 cores, 8-192 GB.
func BatchSweepSpace() SweepSpace {
	return SweepSpace{
		Cores:    []int{8, 16, 24, 32, 48, 64, 80, 96},
		MemoryGB: []float64{8, 16, 32, 48, 64, 96, 128, 160, 192},
	}
}

// ServingSweepSpace is the Figure 12 grid: 8-96 cores, batches 8-1024.
func ServingSweepSpace() SweepSpace {
	return SweepSpace{
		Cores:   []int{8, 16, 24, 32, 48, 64, 80, 88, 96},
		Batches: []int{8, 16, 32, 64, 128, 256, 512, 1024},
	}
}

// Validate checks a sweep space.
func (s SweepSpace) Validate() error {
	if len(s.Cores) == 0 {
		return errors.New("optimize: sweep space needs core choices")
	}
	for _, c := range s.Cores {
		if c < 1 {
			return errors.New("optimize: core choices must be positive")
		}
	}
	return nil
}
