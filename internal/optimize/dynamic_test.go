package optimize

import (
	"testing"

	"fairco2/internal/carbon"
	"fairco2/internal/grid"
	"fairco2/internal/temporal"
	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
)

// embodiedShape builds the Figure 13 embodied multiplier from a 30-day
// Azure-like trace (we use the first 7 days of the signal).
func embodiedShape(t *testing.T) *timeseries.Series {
	t.Helper()
	demand, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	sig, err := temporal.IntensitySignal(demand, 1e7, temporal.Config{SplitRatios: temporal.PaperSplits()})
	if err != nil {
		t.Fatal(err)
	}
	shape, err := NormalizedEmbodiedShape(sig)
	if err != nil {
		t.Fatal(err)
	}
	return shape
}

func TestDynamicWeekReproducesFigure13(t *testing.T) {
	cost := costModel(t)
	ciTrace, err := grid.NewSyntheticCAISO(grid.DefaultCAISOConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := DynamicWeek(cost, grid.Trace{Series: ciTrace}, embodiedShape(t), DefaultDynamicConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 7*288 {
		t.Fatalf("got %d steps, want one week of 5-minute steps", len(res.Steps))
	}
	t.Logf("dynamic optimization savings: %.1f%% (paper: 38.4%%); %d algorithm switches",
		res.Savings*100, res.AlgorithmSwitches)
	// Paper: 38.4% savings over one week. Shape: large double-digit
	// savings with the optimal algorithm switching over time.
	if res.Savings < 0.15 || res.Savings > 0.7 {
		t.Errorf("savings %.2f outside plausible band around 0.384", res.Savings)
	}
	if res.AlgorithmSwitches < 2 {
		t.Errorf("expected IVF <-> HNSW switches over the week, got %d", res.AlgorithmSwitches)
	}
	// Every chosen configuration meets the SLO.
	for i, s := range res.Steps {
		if s.Chosen.TailLatency > DefaultDynamicConfig().SLO {
			t.Fatalf("step %d violates SLO", i)
		}
		if s.Chosen.CarbonPerQuery > s.Static.CarbonPerQuery+1e-12 {
			t.Fatalf("step %d: adaptive choice worse than static", i)
		}
	}
	if res.OptimizedCarbonPerQuery >= res.StaticCarbonPerQuery {
		t.Error("optimized mean should beat static mean")
	}
}

func TestDynamicWeekSwitchesWithGridIntensity(t *testing.T) {
	// With a constant low-carbon grid the optimizer should stick with one
	// algorithm (no switches).
	cost := costModel(t)
	res, err := DynamicWeek(cost, grid.Sweden, embodiedShape(t), DefaultDynamicConfig())
	if err != nil {
		t.Fatal(err)
	}
	ivfSteps := 0
	for _, s := range res.Steps {
		if s.Chosen.Algorithm == "IVF" {
			ivfSteps++
		}
	}
	// At 25 gCO2e/kWh, embodied dominates and IVF (smaller index) should
	// win almost always; embodied-scale swings may flip borderline steps.
	if frac := float64(ivfSteps) / float64(len(res.Steps)); frac < 0.9 {
		t.Errorf("IVF chosen only %.0f%% of the time on a low-carbon grid", frac*100)
	}
}

func TestDynamicWeekErrors(t *testing.T) {
	cost := costModel(t)
	shape := timeseries.New(0, 300, []float64{1, 1})
	cfg := DefaultDynamicConfig()
	if _, err := DynamicWeek(nil, grid.Sweden, shape, cfg); err == nil {
		t.Error("nil cost")
	}
	if _, err := DynamicWeek(cost, nil, shape, cfg); err == nil {
		t.Error("nil grid signal")
	}
	if _, err := DynamicWeek(cost, grid.Sweden, nil, cfg); err == nil {
		t.Error("nil shape")
	}
	bad := cfg
	bad.Step = 0
	if _, err := DynamicWeek(cost, grid.Sweden, shape, bad); err == nil {
		t.Error("zero step")
	}
	bad = cfg
	bad.SLO = 0
	if _, err := DynamicWeek(cost, grid.Sweden, shape, bad); err == nil {
		t.Error("zero SLO")
	}
	bad = cfg
	bad.SLO = 0.00001
	if _, err := DynamicWeek(cost, grid.Sweden, shape, bad); err == nil {
		t.Error("impossible SLO")
	}
}

func TestNormalizedEmbodiedShape(t *testing.T) {
	s := timeseries.New(0, 1, []float64{1, 2, 3})
	norm, err := NormalizedEmbodiedShape(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := norm.Mean(); got < 0.999 || got > 1.001 {
		t.Errorf("normalized mean %v", got)
	}
	if _, err := NormalizedEmbodiedShape(nil); err == nil {
		t.Error("nil signal")
	}
	if _, err := NormalizedEmbodiedShape(timeseries.Zeros(0, 1, 3)); err == nil {
		t.Error("zero-mean signal")
	}
}

func TestDefaultDynamicConfig(t *testing.T) {
	cfg := DefaultDynamicConfig()
	if cfg.SLO != 2 {
		t.Error("paper SLO is 2 s")
	}
	if cfg.Duration != 7*86400 || cfg.Step != 300 {
		t.Error("paper horizon is a week of 5-minute steps")
	}
	_ = carbon.NewReferenceServer()
}
