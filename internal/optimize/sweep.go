package optimize

import (
	"errors"
	"fmt"

	"fairco2/internal/units"
)

// BatchPoint is one configuration of a batch workload with its modeled
// performance.
type BatchPoint struct {
	Cores    int
	MemoryGB float64
	Runtime  units.Seconds
	DynPower units.Watts
}

// SweepBatch enumerates all valid configurations of a batch model over the
// sweep space (invalid ones — memory below the workload's minimum — are
// skipped, mirroring the paper's note that low-memory configurations crash
// or stall).
func SweepBatch(m BatchModel, space SweepSpace) ([]BatchPoint, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if len(space.MemoryGB) == 0 {
		return nil, errors.New("optimize: batch sweep needs memory choices")
	}
	var points []BatchPoint
	for _, c := range space.Cores {
		for _, mem := range space.MemoryGB {
			rt, err := m.Runtime(c, mem)
			if err != nil {
				continue // configuration below the workload's floor
			}
			points = append(points, BatchPoint{Cores: c, MemoryGB: mem, Runtime: rt, DynPower: m.DynPower(c)})
		}
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("optimize: no valid configuration for %s in sweep space", m.Name)
	}
	return points, nil
}

// batchCarbon evaluates a configuration's footprint for one run.
func batchCarbon(cost *CostModel, p BatchPoint, ci units.CarbonIntensity) Breakdown {
	return cost.Carbon(p.Cores, p.MemoryGB, p.Runtime, p.DynPower, ci, 1)
}

// PerfOptimal returns the fastest configuration (ties broken by fewer
// cores, then less memory).
func PerfOptimal(points []BatchPoint) (BatchPoint, error) {
	if len(points) == 0 {
		return BatchPoint{}, errors.New("optimize: no points")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.Runtime < best.Runtime ||
			(p.Runtime == best.Runtime && (p.Cores < best.Cores ||
				(p.Cores == best.Cores && p.MemoryGB < best.MemoryGB))) {
			best = p
		}
	}
	return best, nil
}

// CarbonOptimal returns the configuration minimizing total carbon at the
// given grid intensity.
func CarbonOptimal(cost *CostModel, points []BatchPoint, ci units.CarbonIntensity) (BatchPoint, Breakdown, error) {
	if cost == nil {
		return BatchPoint{}, Breakdown{}, errors.New("optimize: nil cost model")
	}
	if len(points) == 0 {
		return BatchPoint{}, Breakdown{}, errors.New("optimize: no points")
	}
	best := points[0]
	bestBd := batchCarbon(cost, best, ci)
	for _, p := range points[1:] {
		bd := batchCarbon(cost, p, ci)
		if bd.Total() < bestBd.Total() {
			best, bestBd = p, bd
		}
	}
	return best, bestBd, nil
}

// EnergyOptimal returns the configuration minimizing operational energy.
func EnergyOptimal(cost *CostModel, points []BatchPoint) (BatchPoint, error) {
	if cost == nil {
		return BatchPoint{}, errors.New("optimize: nil cost model")
	}
	if len(points) == 0 {
		return BatchPoint{}, errors.New("optimize: no points")
	}
	best := points[0]
	bestE := cost.Energy(best.Cores, best.DynPower, best.Runtime)
	for _, p := range points[1:] {
		if e := cost.Energy(p.Cores, p.DynPower, p.Runtime); e < bestE {
			best, bestE = p, e
		}
	}
	return best, nil
}

// EmbodiedOptimal returns the configuration minimizing embodied carbon.
func EmbodiedOptimal(cost *CostModel, points []BatchPoint) (BatchPoint, error) {
	if cost == nil {
		return BatchPoint{}, errors.New("optimize: nil cost model")
	}
	if len(points) == 0 {
		return BatchPoint{}, errors.New("optimize: no points")
	}
	best := points[0]
	bestE := batchCarbon(cost, best, 0).Embodied
	for _, p := range points[1:] {
		if e := batchCarbon(cost, p, 0).Embodied; e < bestE {
			best, bestE = p, e
		}
	}
	return best, nil
}

// Figure10Row is one grid-intensity step of the Figure 10 summary for one
// workload: the carbon of each optimization policy normalized to the
// performance-optimal configuration's carbon at that intensity.
type Figure10Row struct {
	GridCI units.CarbonIntensity
	// CarbonOpt is the carbon-optimal configuration at this intensity.
	CarbonOpt BatchPoint
	// NormCarbonOpt, NormEnergyOpt and NormEmbodiedOpt are each policy's
	// total carbon divided by the performance-optimal total.
	NormCarbonOpt   float64
	NormEnergyOpt   float64
	NormEmbodiedOpt float64
}

// Figure10 sweeps grid intensities for one workload.
func Figure10(m BatchModel, cost *CostModel, cis []units.CarbonIntensity) ([]Figure10Row, error) {
	points, err := SweepBatch(m, BatchSweepSpace())
	if err != nil {
		return nil, err
	}
	perf, err := PerfOptimal(points)
	if err != nil {
		return nil, err
	}
	energyOpt, err := EnergyOptimal(cost, points)
	if err != nil {
		return nil, err
	}
	embodiedOpt, err := EmbodiedOptimal(cost, points)
	if err != nil {
		return nil, err
	}
	rows := make([]Figure10Row, 0, len(cis))
	for _, ci := range cis {
		if ci < 0 {
			return nil, fmt.Errorf("optimize: negative grid intensity %v", ci)
		}
		perfTotal := float64(batchCarbon(cost, perf, ci).Total())
		opt, bd, err := CarbonOptimal(cost, points, ci)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure10Row{
			GridCI:          ci,
			CarbonOpt:       opt,
			NormCarbonOpt:   float64(bd.Total()) / perfTotal,
			NormEnergyOpt:   float64(batchCarbon(cost, energyOpt, ci).Total()) / perfTotal,
			NormEmbodiedOpt: float64(batchCarbon(cost, embodiedOpt, ci).Total()) / perfTotal,
		})
	}
	return rows, nil
}

// MaxSavings returns the largest carbon saving of the carbon-optimal
// policy over the performance-optimal configuration across the rows, as a
// fraction in [0, 1].
func MaxSavings(rows []Figure10Row) float64 {
	best := 0.0
	for _, r := range rows {
		if s := 1 - r.NormCarbonOpt; s > best {
			best = s
		}
	}
	return best
}

// ConfigChanges counts how often the carbon-optimal configuration changes
// along the intensity sweep — Figure 10's shaded-region boundaries.
func ConfigChanges(rows []Figure10Row) int {
	changes := 0
	for i := 1; i < len(rows); i++ {
		if rows[i].CarbonOpt != rows[i-1].CarbonOpt {
			changes++
		}
	}
	return changes
}

// Region is a contiguous grid-intensity band over which one configuration
// stays carbon-optimal — Figure 10's shaded regions.
type Region struct {
	FromCI, ToCI units.CarbonIntensity
	Config       BatchPoint
}

// Regions collapses a Figure 10 sweep into its optimal-configuration
// bands. Rows must be in ascending CI order (as Figure10 returns them).
func Regions(rows []Figure10Row) []Region {
	if len(rows) == 0 {
		return nil
	}
	var out []Region
	cur := Region{FromCI: rows[0].GridCI, ToCI: rows[0].GridCI, Config: rows[0].CarbonOpt}
	for _, r := range rows[1:] {
		if r.CarbonOpt != cur.Config {
			out = append(out, cur)
			cur = Region{FromCI: r.GridCI, Config: r.CarbonOpt}
		}
		cur.ToCI = r.GridCI
	}
	return append(out, cur)
}

// DefaultCISweep returns the Figure 10 grid-intensity axis, 0-1000
// gCO2e/kWh.
func DefaultCISweep() []units.CarbonIntensity {
	cis := make([]units.CarbonIntensity, 0, 101)
	for ci := 0.0; ci <= 1000; ci += 10 {
		cis = append(cis, units.CarbonIntensity(ci))
	}
	return cis
}
