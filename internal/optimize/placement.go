package optimize

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fairco2/internal/units"
)

// RegionCost prices one region for cross-region placement: the carbon a
// core-second costs there, split into the operational component (regional
// grid intensity through the fleet's power draw and PUE) and the embodied
// component (the regional fleet's amortized manufacturing carbon). The
// multiregion scenario engine derives these from discovered fleets; tests
// may construct them directly.
type RegionCost struct {
	// Provider and Region identify the placement target.
	Provider string
	Region   string
	// MeanCI is the region's mean operational grid intensity.
	MeanCI units.CarbonIntensity
	// WattsPerCore is the fleet-weighted power draw per schedulable
	// (logical) core at typical utilization, before PUE.
	WattsPerCore float64
	// PUE is the facility's power usage effectiveness multiplier.
	PUE float64
	// EmbodiedPerCoreSecond is the fleet-weighted amortized embodied
	// carbon per logical core-second, in gCO2e.
	EmbodiedPerCoreSecond float64
}

// Validate checks the pricing inputs.
func (r RegionCost) Validate() error {
	switch {
	case r.Region == "":
		return errors.New("optimize: region cost needs a region name")
	case r.MeanCI < 0 || math.IsNaN(float64(r.MeanCI)) || math.IsInf(float64(r.MeanCI), 0):
		return fmt.Errorf("optimize: region %s: invalid mean intensity %v", r.Region, r.MeanCI)
	case r.WattsPerCore < 0 || math.IsNaN(r.WattsPerCore) || math.IsInf(r.WattsPerCore, 0):
		return fmt.Errorf("optimize: region %s: invalid watts per core %v", r.Region, r.WattsPerCore)
	case r.PUE < 1 || math.IsInf(r.PUE, 0):
		return fmt.Errorf("optimize: region %s: PUE must be >= 1, got %v", r.Region, r.PUE)
	case r.EmbodiedPerCoreSecond < 0 || math.IsNaN(r.EmbodiedPerCoreSecond) || math.IsInf(r.EmbodiedPerCoreSecond, 0):
		return fmt.Errorf("optimize: region %s: invalid embodied rate %v", r.Region, r.EmbodiedPerCoreSecond)
	}
	return nil
}

// CarbonPerCoreSecond returns the full (operational + embodied) carbon
// price of one core-second in the region, in gCO2e.
func (r RegionCost) CarbonPerCoreSecond() float64 {
	operational := units.Emissions(units.Energy(units.Watts(r.WattsPerCore*r.PUE), 1), r.MeanCI)
	return float64(operational) + r.EmbodiedPerCoreSecond
}

// TenantLoad is one tenant's placed demand: where it currently runs and
// how much resource-time it consumes over the scenario window.
type TenantLoad struct {
	Tenant      string
	Region      string
	CoreSeconds units.CoreSeconds
}

// Move relocates one tenant's load to a cheaper region.
type Move struct {
	Tenant string
	From   string
	To     string
	// SavingGrams is the carbon saved over the window by this move alone.
	SavingGrams float64
}

// PlacementPoint is one point of the placement Pareto front: the best
// total fleet carbon achievable with at most Moves relocations.
type PlacementPoint struct {
	// Moves is the number of relocations applied.
	Moves int
	// TotalGrams is the fleet-wide carbon over the window after applying
	// the plan.
	TotalGrams float64
	// Plan lists the applied moves, best saving first.
	Plan []Move
}

// PlacementSweep prices every tenant in every candidate region and returns
// the Pareto front of migration count versus total fleet carbon: point k
// is the best achievable total with at most k moves, for k = 0..maxMoves.
// Moves are chosen greedily by descending saving, which is exact here
// because tenant savings are independent (regional prices do not depend on
// placement). The sweep is deterministic: ties in saving break by tenant
// name, then by target region name, so equal inputs always produce
// bitwise-identical fronts.
func PlacementSweep(regions []RegionCost, loads []TenantLoad, maxMoves int) ([]PlacementPoint, error) {
	if len(regions) == 0 {
		return nil, errors.New("optimize: placement needs at least one region")
	}
	if maxMoves < 0 {
		return nil, errors.New("optimize: negative move cap")
	}
	price := make(map[string]float64, len(regions))
	for _, r := range regions {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if _, dup := price[r.Region]; dup {
			return nil, fmt.Errorf("optimize: duplicate region %s in placement input", r.Region)
		}
		price[r.Region] = r.CarbonPerCoreSecond()
	}
	// Deterministic candidate order for tie-breaking on equal prices.
	names := make([]string, 0, len(regions))
	for _, r := range regions {
		names = append(names, r.Region)
	}
	sort.Strings(names)

	baseline := 0.0
	var candidates []Move
	for _, l := range loads {
		current, ok := price[l.Region]
		if !ok {
			return nil, fmt.Errorf("optimize: tenant %s placed in unknown region %s", l.Tenant, l.Region)
		}
		if l.CoreSeconds < 0 {
			return nil, fmt.Errorf("optimize: tenant %s has negative load", l.Tenant)
		}
		baseline += current * float64(l.CoreSeconds)
		best, bestName := current, l.Region
		for _, name := range names {
			if p := price[name]; p < best {
				best, bestName = p, name
			}
		}
		if bestName != l.Region {
			candidates = append(candidates, Move{
				Tenant:      l.Tenant,
				From:        l.Region,
				To:          bestName,
				SavingGrams: (current - best) * float64(l.CoreSeconds),
			})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].SavingGrams != candidates[j].SavingGrams {
			return candidates[i].SavingGrams > candidates[j].SavingGrams
		}
		if candidates[i].Tenant != candidates[j].Tenant {
			return candidates[i].Tenant < candidates[j].Tenant
		}
		return candidates[i].To < candidates[j].To
	})
	if len(candidates) > maxMoves {
		candidates = candidates[:maxMoves]
	}

	front := make([]PlacementPoint, 0, len(candidates)+1)
	total := baseline
	front = append(front, PlacementPoint{Moves: 0, TotalGrams: total})
	for k, m := range candidates {
		total -= m.SavingGrams
		front = append(front, PlacementPoint{
			Moves:      k + 1,
			TotalGrams: total,
			Plan:       append([]Move(nil), candidates[:k+1]...),
		})
	}
	return front, nil
}
