package optimize

import (
	"math"
	"testing"

	"fairco2/internal/carbon"
)

func costModel(t *testing.T) *CostModel {
	t.Helper()
	c, err := NewCostModel(carbon.NewReferenceServer())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBatchRuntimeMonotoneInCores(t *testing.T) {
	for _, m := range BatchModels() {
		prev := math.Inf(1)
		for _, c := range BatchSweepSpace().Cores {
			rt, err := m.Runtime(c, 192)
			if err != nil {
				t.Fatalf("%s cores=%d: %v", m.Name, c, err)
			}
			if float64(rt) >= prev {
				t.Fatalf("%s: runtime not strictly decreasing at %d cores", m.Name, c)
			}
			prev = float64(rt)
		}
	}
}

func TestBatchRuntimeSaturation(t *testing.T) {
	// Past saturation, extra cores barely help.
	m := BatchModel{Name: "x", SerialSeconds: 10, ParallelWork: 9600, ScalingExp: 0.9, MinMemoryGB: 8, WorkingSetGB: 8, SaturationCores: 48, PowerPerCore: 5}
	t48, err := m.Runtime(48, 192)
	if err != nil {
		t.Fatal(err)
	}
	t96, err := m.Runtime(96, 192)
	if err != nil {
		t.Fatal(err)
	}
	gain := 1 - float64(t96)/float64(t48)
	if gain <= 0 || gain > 0.15 {
		t.Errorf("saturated doubling gained %.1f%%, want small positive", gain*100)
	}
	// Without saturation the same doubling is a large win.
	m.SaturationCores = 0
	u48, _ := m.Runtime(48, 192)
	u96, _ := m.Runtime(96, 192)
	if gainFree := 1 - float64(u96)/float64(u48); gainFree < 2*gain {
		t.Errorf("unsaturated gain %.2f should far exceed saturated %.2f", gainFree, gain)
	}
}

func TestBatchMemoryPenalty(t *testing.T) {
	models := BatchModels()
	var spark BatchModel
	for _, m := range models {
		if m.Name == "SPARK" {
			spark = m
		}
	}
	full, err := spark.Runtime(48, spark.WorkingSetGB)
	if err != nil {
		t.Fatal(err)
	}
	squeezed, err := spark.Runtime(48, spark.MinMemoryGB)
	if err != nil {
		t.Fatal(err)
	}
	if squeezed <= full {
		t.Error("below-working-set memory should slow the run")
	}
	if _, err := spark.Runtime(48, spark.MinMemoryGB-1); err == nil {
		t.Error("below-minimum memory should error")
	}
	if _, err := spark.Runtime(0, 192); err == nil {
		t.Error("zero cores should error")
	}
}

func TestDynPowerSublinear(t *testing.T) {
	// J per %-second decreasing with cores (paper's SMT observation):
	// power per core falls as cores grow.
	m := BatchModels()[0]
	perCore48 := float64(m.DynPower(48)) / 48
	perCore96 := float64(m.DynPower(96)) / 96
	if perCore96 >= perCore48 {
		t.Error("dynamic power per core should fall with core count")
	}
}

func TestSweepBatchAndOptima(t *testing.T) {
	cost := costModel(t)
	for _, m := range BatchModels() {
		points, err := SweepBatch(m, BatchSweepSpace())
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		perf, err := PerfOptimal(points)
		if err != nil {
			t.Fatal(err)
		}
		if perf.Cores != 96 {
			t.Errorf("%s: perf-optimal should use all cores, got %d", m.Name, perf.Cores)
		}
		eOpt, err := EnergyOptimal(cost, points)
		if err != nil {
			t.Fatal(err)
		}
		embOpt, err := EmbodiedOptimal(cost, points)
		if err != nil {
			t.Fatal(err)
		}
		// Energy- and embodied-optimal runtimes can't beat perf-optimal.
		if eOpt.Runtime < perf.Runtime || embOpt.Runtime < perf.Runtime {
			t.Errorf("%s: optimum faster than perf-optimal", m.Name)
		}
	}
}

func TestFigure10ShapeAndSavings(t *testing.T) {
	cost := costModel(t)
	cis := DefaultCISweep()
	maxSavings := 0.0
	changedCount := 0
	for _, m := range BatchModels() {
		rows, err := Figure10(m, cost, cis)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(rows) != len(cis) {
			t.Fatalf("%s: %d rows", m.Name, len(rows))
		}
		for _, r := range rows {
			// The carbon-optimal policy can never lose to the others.
			if r.NormCarbonOpt > r.NormEnergyOpt+1e-9 || r.NormCarbonOpt > r.NormEmbodiedOpt+1e-9 {
				t.Fatalf("%s: carbon-optimal beaten at CI %v", m.Name, r.GridCI)
			}
			if r.NormCarbonOpt > 1+1e-9 {
				t.Fatalf("%s: carbon-optimal worse than perf-optimal at CI %v", m.Name, r.GridCI)
			}
		}
		if s := MaxSavings(rows); s > maxSavings {
			maxSavings = s
		}
		if ConfigChanges(rows) > 0 {
			changedCount++
		}
	}
	t.Logf("max savings across workloads: %.1f%%; workloads with CI-dependent optimum: %d/9", maxSavings*100, changedCount)
	// Paper: up to 65% savings; the optimal configuration changes with CI.
	if maxSavings < 0.3 || maxSavings > 0.85 {
		t.Errorf("max savings %.2f outside plausible range", maxSavings)
	}
	if changedCount < 5 {
		t.Errorf("only %d/9 workloads change optimum with CI", changedCount)
	}
}

func TestRegions(t *testing.T) {
	if Regions(nil) != nil {
		t.Error("empty rows should give nil regions")
	}
	cost := costModel(t)
	rows, err := Figure10(BatchModels()[0], cost, DefaultCISweep())
	if err != nil {
		t.Fatal(err)
	}
	regions := Regions(rows)
	if len(regions) < 2 {
		t.Fatalf("expected the optimum to change along the sweep, got %d regions", len(regions))
	}
	// Regions tile the sweep contiguously.
	if regions[0].FromCI != rows[0].GridCI || regions[len(regions)-1].ToCI != rows[len(rows)-1].GridCI {
		t.Error("regions should cover the full sweep")
	}
	for i := 1; i < len(regions); i++ {
		if regions[i].Config == regions[i-1].Config {
			t.Error("adjacent regions must differ in configuration")
		}
		if regions[i].FromCI <= regions[i-1].ToCI-10 {
			t.Error("regions overlap")
		}
	}
	// As CI rises operational carbon dominates, so the high-CI optimum
	// must consume less energy than the zero-CI (embodied-only) optimum.
	lowCfg := regions[0].Config
	highCfg := regions[len(regions)-1].Config
	lowE := cost.Energy(lowCfg.Cores, lowCfg.DynPower, lowCfg.Runtime)
	highE := cost.Energy(highCfg.Cores, highCfg.DynPower, highCfg.Runtime)
	if highE >= lowE {
		t.Errorf("high-CI optimum energy %v should undercut low-CI optimum %v", highE, lowE)
	}
}

func TestServingModelShape(t *testing.T) {
	models := ServingModels()
	if len(models) != 2 || models[0].Algorithm != "IVF" || models[1].Algorithm != "HNSW" {
		t.Fatal("expected IVF and HNSW models")
	}
	ivf, hnsw := models[0], models[1]
	if ivf.IndexGB != 77.7 || hnsw.IndexGB != 180.8 {
		t.Error("index sizes should match §8 (77.7 vs 180.8 GB)")
	}
	// IVF reaches lower latency at small batches (its fastest config
	// beats HNSW's fastest).
	li, err := ivf.BatchLatency(96, 8)
	if err != nil {
		t.Fatal(err)
	}
	lh, err := hnsw.BatchLatency(96, 8)
	if err != nil {
		t.Fatal(err)
	}
	if li >= lh {
		t.Error("IVF should reach lower small-batch latency")
	}
	// HNSW draws less power.
	if hnsw.DynPower(88) >= ivf.DynPower(88) {
		t.Error("HNSW should draw less power")
	}
	// HNSW stops scaling past 88 cores.
	l88, _ := hnsw.BatchLatency(88, 64)
	l96, _ := hnsw.BatchLatency(96, 64)
	if l96 != l88 {
		t.Error("HNSW should not improve past 88 cores")
	}
	if _, err := ivf.BatchLatency(0, 8); err == nil {
		t.Error("zero cores should error")
	}
	if _, err := ivf.BatchLatency(8, 0); err == nil {
		t.Error("zero batch should error")
	}
	qps, err := ivf.Throughput(48, 64)
	if err != nil || qps <= 0 {
		t.Errorf("throughput %v, %v", qps, err)
	}
}

func TestSweepServingAndPareto(t *testing.T) {
	cost := costModel(t)
	points, err := SweepServing(ServingModels(), ServingSweepSpace(), cost, 230, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*9*8 {
		t.Fatalf("got %d points", len(points))
	}
	front := Pareto(points)
	if len(front) < 3 || len(front) >= len(points) {
		t.Fatalf("front size %d implausible", len(front))
	}
	// Front is sorted by latency with strictly decreasing carbon.
	for i := 1; i < len(front); i++ {
		if front[i].TailLatency <= front[i-1].TailLatency {
			t.Fatal("front not sorted by latency")
		}
		if front[i].CarbonPerQuery >= front[i-1].CarbonPerQuery {
			t.Fatal("front carbon not decreasing")
		}
	}
	// Low-latency end costs far more carbon than the relaxed end —
	// Figure 12's key trade-off.
	if float64(front[0].CarbonPerQuery) < 1.3*float64(front[len(front)-1].CarbonPerQuery) {
		t.Error("latency-optimal end should cost substantially more carbon")
	}
}

func TestAlgorithmCrossoverNear90(t *testing.T) {
	cost := costModel(t)
	cross, err := AlgorithmCrossover(ServingModels(), ServingSweepSpace(), cost, 2, 0, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("IVF -> HNSW crossover at %v (paper: ~90 gCO2e/kWh)", cross)
	if cross < 40 || cross > 200 {
		t.Errorf("crossover %v outside the plausible band around 90", cross)
	}
	// Below the crossover IVF must be optimal, above it HNSW.
	lowPoints, err := SweepServing(ServingModels(), ServingSweepSpace(), cost, cross-30, 1)
	if err != nil {
		t.Fatal(err)
	}
	low, err := BestUnderSLO(lowPoints, 2)
	if err != nil {
		t.Fatal(err)
	}
	if low.Algorithm != "IVF" {
		t.Errorf("below crossover optimal is %s, want IVF", low.Algorithm)
	}
	highPoints, err := SweepServing(ServingModels(), ServingSweepSpace(), cost, cross+100, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := BestUnderSLO(highPoints, 2)
	if err != nil {
		t.Fatal(err)
	}
	if high.Algorithm != "HNSW" {
		t.Errorf("above crossover optimal is %s, want HNSW", high.Algorithm)
	}
}

func TestBestUnderSLO(t *testing.T) {
	cost := costModel(t)
	points, err := SweepServing(ServingModels(), ServingSweepSpace(), cost, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestUnderSLO(points, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best.TailLatency > 2 {
		t.Error("SLO violated")
	}
	if _, err := BestUnderSLO(points, 0.0001); err == nil {
		t.Error("impossible SLO should error")
	}
}

func TestSweepErrors(t *testing.T) {
	cost := costModel(t)
	if _, err := SweepBatch(BatchModels()[0], SweepSpace{}); err == nil {
		t.Error("empty space")
	}
	if _, err := SweepBatch(BatchModels()[0], SweepSpace{Cores: []int{8}}); err == nil {
		t.Error("no memory choices")
	}
	tooSmall := BatchModels()[2] // MSF needs 96 GB minimum
	if _, err := SweepBatch(tooSmall, SweepSpace{Cores: []int{8}, MemoryGB: []float64{8}}); err == nil {
		t.Error("no valid configs should error")
	}
	if _, err := SweepServing(nil, ServingSweepSpace(), cost, 100, 1); err == nil {
		t.Error("no models")
	}
	if _, err := SweepServing(ServingModels(), SweepSpace{Cores: []int{8}}, cost, 100, 1); err == nil {
		t.Error("no batches")
	}
	if _, err := SweepServing(ServingModels(), ServingSweepSpace(), nil, 100, 1); err == nil {
		t.Error("nil cost")
	}
	if _, err := SweepServing(ServingModels(), ServingSweepSpace(), cost, -1, 1); err == nil {
		t.Error("negative ci")
	}
	if _, err := SweepServing(ServingModels(), ServingSweepSpace(), cost, 1, -1); err == nil {
		t.Error("negative scale")
	}
	if _, err := NewCostModel(nil); err == nil {
		t.Error("nil server")
	}
	if _, err := PerfOptimal(nil); err == nil {
		t.Error("no points")
	}
	if _, _, err := CarbonOptimal(cost, nil, 0); err == nil {
		t.Error("no points for carbon optimal")
	}
	if _, err := EnergyOptimal(cost, nil); err == nil {
		t.Error("no points for energy optimal")
	}
	if _, err := EmbodiedOptimal(cost, nil); err == nil {
		t.Error("no points for embodied optimal")
	}
	if _, err := FastestPoint(nil); err == nil {
		t.Error("no points for fastest")
	}
	if Pareto(nil) != nil {
		t.Error("empty pareto should be nil")
	}
	if _, err := AlgorithmCrossover(ServingModels(), ServingSweepSpace(), cost, 2, 100, 0, 5); err == nil {
		t.Error("invalid scan range")
	}
}

func TestBreakdown(t *testing.T) {
	cost := costModel(t)
	bd := cost.Carbon(48, 96, 3600, 150, 300, 1)
	if bd.Embodied <= 0 || bd.Static <= 0 || bd.Dynamic <= 0 {
		t.Fatalf("all components should be positive: %+v", bd)
	}
	if got := bd.Total(); math.Abs(float64(got-(bd.Embodied+bd.Static+bd.Dynamic))) > 1e-12 {
		t.Error("total mismatch")
	}
	if got := bd.Operational(); math.Abs(float64(got-(bd.Static+bd.Dynamic))) > 1e-12 {
		t.Error("operational mismatch")
	}
	// Zero CI: only embodied remains.
	zero := cost.Carbon(48, 96, 3600, 150, 0, 1)
	if zero.Static != 0 || zero.Dynamic != 0 {
		t.Error("zero CI should zero operational carbon")
	}
	// Embodied scale doubles embodied only.
	double := cost.Carbon(48, 96, 3600, 150, 300, 2)
	if math.Abs(float64(double.Embodied)-2*float64(bd.Embodied)) > 1e-9 {
		t.Error("embodied scale not applied")
	}
	if double.Static != bd.Static || double.Dynamic != bd.Dynamic {
		t.Error("embodied scale must not affect operational carbon")
	}
	// Energy accounting.
	e := cost.Energy(48, 150, 3600)
	wantWatts := 250.0*48/48/2 + 150 // static share half the node + dynamic
	if math.Abs(float64(e)-wantWatts*3600) > 1e-6 {
		t.Errorf("energy %v, want %v", float64(e), wantWatts*3600)
	}
}
