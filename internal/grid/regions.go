package grid

import (
	"fmt"
	"math"

	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// RegionProfile parameterizes a synthetic-but-calibrated regional carbon
// intensity trace. It generalizes the CAISO duck-curve generator: every
// region shares the same diurnal structure (solar trough, evening ramp,
// overnight lift, weekend dip) plus two slower modulations — a multi-day
// wind oscillation and an annual seasonal swing — with coefficients set
// from representative 2023 Electricity Maps levels. The generated trace is
// normalized so its time-average equals Mean exactly, and every sample is
// strictly positive.
type RegionProfile struct {
	// Name is the region identifier used across the scenario engine
	// (e.g. "us-west").
	Name string
	// Description names the grid the profile is calibrated to.
	Description string
	// Mean is the average intensity in gCO2e/kWh.
	Mean float64
	// SolarDepth is the fractional midday dip (0.5 halves intensity at
	// the solar peak).
	SolarDepth float64
	// EveningRampHeight is the fractional evening-peak rise.
	EveningRampHeight float64
	// NightLift is the mild overnight elevation (no solar at all).
	NightLift float64
	// WeekendScale multiplies weekend intensity.
	WeekendScale float64
	// WindAmplitude is the fractional swing of a slow wind oscillation;
	// 0 disables it (solar- or baseload-dominated grids).
	WindAmplitude float64
	// WindPeriodHours is the wind oscillation period (synoptic weather
	// systems pass in days, not hours).
	WindPeriodHours float64
	// SeasonalAmplitude is the fractional annual swing.
	SeasonalAmplitude float64
	// SeasonalPeakDay is the day of year the seasonal factor peaks
	// (winter-peaking grids near 15, summer-peaking near 200).
	SeasonalPeakDay float64
}

// Validate checks the profile's coefficients.
func (p RegionProfile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("grid: region profile needs a name")
	case p.Mean <= 0 || math.IsNaN(p.Mean) || math.IsInf(p.Mean, 0):
		return fmt.Errorf("grid: region %s: mean intensity must be positive and finite, got %v", p.Name, p.Mean)
	case p.SolarDepth < 0 || p.SolarDepth >= 1:
		return fmt.Errorf("grid: region %s: solar depth must be in [0, 1), got %v", p.Name, p.SolarDepth)
	case p.EveningRampHeight < 0 || p.EveningRampHeight > 10 || p.NightLift < 0 || p.NightLift > 10:
		return fmt.Errorf("grid: region %s: diurnal lifts must be in [0, 10]", p.Name)
	case p.WeekendScale <= 0 || p.WeekendScale > 10:
		return fmt.Errorf("grid: region %s: weekend scale must be in (0, 10], got %v", p.Name, p.WeekendScale)
	case p.WindAmplitude < 0 || p.WindAmplitude >= 1:
		return fmt.Errorf("grid: region %s: wind amplitude must be in [0, 1), got %v", p.Name, p.WindAmplitude)
	case p.WindAmplitude > 0 && !(p.WindPeriodHours > 0 && !math.IsInf(p.WindPeriodHours, 0)):
		return fmt.Errorf("grid: region %s: wind period must be positive and finite, got %v", p.Name, p.WindPeriodHours)
	case p.SeasonalAmplitude < 0 || p.SeasonalAmplitude >= 1:
		return fmt.Errorf("grid: region %s: seasonal amplitude must be in [0, 1), got %v", p.Name, p.SeasonalAmplitude)
	case p.SeasonalAmplitude > 0 && (math.IsNaN(p.SeasonalPeakDay) || math.IsInf(p.SeasonalPeakDay, 0)):
		return fmt.Errorf("grid: region %s: seasonal peak day must be finite, got %v", p.Name, p.SeasonalPeakDay)
	}
	return nil
}

// shapeFloor is the minimum pre-normalization shape value: no grid ever
// reaches zero intensity, so the generator clamps here before scaling to
// the configured mean, guaranteeing strictly positive traces for any
// coefficient combination Validate admits.
const shapeFloor = 0.02

// regionShapeAt returns the multiplicative shape of profile p at t seconds
// from the trace epoch (midnight of a Monday, day 0 of the year).
func regionShapeAt(p RegionProfile, t float64) float64 {
	hour := math.Mod(t/units.SecondsPerHour, 24)
	day := int(t / units.SecondsPerDay)

	shape := 1.0
	// Solar trough: a Gaussian dip centered at 13:00 with ~3.5 h width.
	shape -= p.SolarDepth * math.Exp(-sq(hour-13)/(2*sq(3.5)))
	// Evening ramp: peakers covering the post-sunset demand peak.
	shape += p.EveningRampHeight * math.Exp(-sq(hour-19.5)/(2*sq(2)))
	// Mild overnight elevation.
	shape += p.NightLift * math.Exp(-sq(math.Mod(hour+12, 24)-12)/(2*sq(4)))
	if dayOfWeek := day % 7; dayOfWeek >= 5 {
		shape *= p.WeekendScale
	}
	// Slow wind oscillation: synoptic systems sweeping through over days.
	if p.WindAmplitude > 0 {
		shape *= 1 + p.WindAmplitude*math.Sin(2*math.Pi*t/(p.WindPeriodHours*units.SecondsPerHour))
	}
	// Annual seasonal swing, peaking at SeasonalPeakDay.
	if p.SeasonalAmplitude > 0 {
		dayOfYear := math.Mod(float64(day), 365)
		shape *= 1 + p.SeasonalAmplitude*math.Cos(2*math.Pi*(dayOfYear-p.SeasonalPeakDay)/365)
	}
	if shape < shapeFloor {
		shape = shapeFloor
	}
	return shape
}

// NewSyntheticRegion generates a regional intensity trace of the given
// length, sampled at step, normalized so its time-average equals p.Mean.
func NewSyntheticRegion(p RegionProfile, step units.Seconds, days int) (*timeseries.Series, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if days < 1 {
		return nil, fmt.Errorf("grid: region %s: need at least one day, got %d", p.Name, days)
	}
	if step <= 0 {
		return nil, fmt.Errorf("grid: region %s: step must be positive, got %v", p.Name, step)
	}
	n := int(float64(days) * units.SecondsPerDay / float64(step))
	if n < 1 {
		return nil, fmt.Errorf("grid: region %s: step %v longer than the %d-day window", p.Name, step, days)
	}
	values := make([]float64, n)
	sum := 0.0
	for i := range values {
		values[i] = regionShapeAt(p, float64(step)*float64(i))
		sum += values[i]
	}
	scale := p.Mean * float64(n) / sum
	for i := range values {
		values[i] *= scale
	}
	return timeseries.New(0, step, values), nil
}

// Profiles returns the built-in regional profiles, covering the scenario
// engine's provider fleets: a hydro/nuclear baseload grid, solar- and
// wind-dominated grids, and coal- or gas-heavy ones, spanning a ~30x
// spread in mean intensity. Order is fixed (it seeds deterministic fleet
// discovery).
func Profiles() []RegionProfile {
	return []RegionProfile{
		{
			Name: "us-west", Description: "CAISO: deep solar trough, evening gas ramp",
			Mean: 230, SolarDepth: 0.75, EveningRampHeight: 0.35, NightLift: 0.08,
			WeekendScale: 0.92, WindAmplitude: 0.05, WindPeriodHours: 30,
			SeasonalAmplitude: 0.10, SeasonalPeakDay: 240,
		},
		{
			Name: "us-midwest", Description: "MISO: coal-heavy baseload, summer AC peak",
			Mean: 600, SolarDepth: 0.10, EveningRampHeight: 0.15, NightLift: 0.05,
			WeekendScale: 0.95, WindAmplitude: 0.08, WindPeriodHours: 40,
			SeasonalAmplitude: 0.08, SeasonalPeakDay: 200,
		},
		{
			Name: "eu-north", Description: "Sweden: hydro/nuclear, nearly flat, winter peak",
			Mean: 25, SolarDepth: 0.05, EveningRampHeight: 0.05, NightLift: 0.02,
			WeekendScale: 0.98, WindAmplitude: 0.10, WindPeriodHours: 50,
			SeasonalAmplitude: 0.15, SeasonalPeakDay: 15,
		},
		{
			Name: "eu-central", Description: "Germany: solar plus strong synoptic wind swings",
			Mean: 380, SolarDepth: 0.45, EveningRampHeight: 0.30, NightLift: 0.06,
			WeekendScale: 0.88, WindAmplitude: 0.25, WindPeriodHours: 60,
			SeasonalAmplitude: 0.12, SeasonalPeakDay: 15,
		},
		{
			Name: "eu-west", Description: "Great Britain: wind-dominated, gas backup",
			Mean: 210, SolarDepth: 0.20, EveningRampHeight: 0.25, NightLift: 0.05,
			WeekendScale: 0.90, WindAmplitude: 0.35, WindPeriodHours: 55,
			SeasonalAmplitude: 0.10, SeasonalPeakDay: 10,
		},
		{
			Name: "ap-southeast", Description: "Singapore: flat gas baseload",
			Mean: 470, SolarDepth: 0.08, EveningRampHeight: 0.10, NightLift: 0.03,
			WeekendScale: 0.97, WindAmplitude: 0.03, WindPeriodHours: 45,
			SeasonalAmplitude: 0.03, SeasonalPeakDay: 120,
		},
		{
			Name: "ap-south", Description: "India: coal-heavy, pre-monsoon peak",
			Mean: 710, SolarDepth: 0.15, EveningRampHeight: 0.20, NightLift: 0.05,
			WeekendScale: 0.96, WindAmplitude: 0.05, WindPeriodHours: 35,
			SeasonalAmplitude: 0.18, SeasonalPeakDay: 130,
		},
		{
			Name: "sa-east", Description: "Brazil: hydro with a dry-season thermal peak",
			Mean: 100, SolarDepth: 0.10, EveningRampHeight: 0.15, NightLift: 0.03,
			WeekendScale: 0.94, WindAmplitude: 0.12, WindPeriodHours: 70,
			SeasonalAmplitude: 0.25, SeasonalPeakDay: 270,
		},
	}
}

// ProfileByName returns the built-in profile with the given name.
func ProfileByName(name string) (RegionProfile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return RegionProfile{}, fmt.Errorf("grid: unknown region profile %q", name)
}

// InterpTrace is a Signal backed by a time series, linearly interpolated
// between sample midpoints (Series.Interp) instead of stepped. Placement
// pricing uses it so intensities move continuously across region clocks.
type InterpTrace struct {
	Series *timeseries.Series
}

// At implements Signal.
func (tr InterpTrace) At(t units.Seconds) units.CarbonIntensity {
	return units.CarbonIntensity(tr.Series.Interp(t))
}
