package grid

import (
	"math"
	"testing"

	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

func TestConstantSignal(t *testing.T) {
	if Sweden.At(0) != 25 || Sweden.At(1e9) != 25 {
		t.Error("constant signal should be time-invariant")
	}
	if California.At(0) != 230 {
		t.Error("California preset")
	}
	if USMidwest.At(0) != 600 {
		t.Error("USMidwest preset")
	}
}

func TestTraceSignal(t *testing.T) {
	s := timeseries.New(0, 3600, []float64{100, 300, 200})
	tr := Trace{Series: s}
	if got := tr.At(1800); got != 100 {
		t.Errorf("At(1800) = %v", got)
	}
	if got := tr.At(4000); got != 300 {
		t.Errorf("At(4000) = %v", got)
	}
	// Clamping.
	if got := tr.At(-5); got != 100 {
		t.Errorf("At(-5) = %v", got)
	}
	if got := tr.At(1e9); got != 200 {
		t.Errorf("At(big) = %v", got)
	}
}

func TestSyntheticCAISOShape(t *testing.T) {
	cfg := DefaultCAISOConfig()
	s, err := NewSyntheticCAISO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 7*24 {
		t.Fatalf("Len = %d, want 168 hourly samples", s.Len())
	}
	// Mean should be near the configured mean (shape averages near 1).
	if mean := s.Mean(); math.Abs(mean-cfg.Mean)/cfg.Mean > 0.15 {
		t.Errorf("mean intensity %v far from configured %v", mean, cfg.Mean)
	}
	// The 13:00 solar trough must be the daily minimum region and the
	// evening ramp the maximum.
	midday := s.Values[13]
	evening := s.Values[19]
	night := s.Values[3]
	if !(midday < night && night < evening) {
		t.Errorf("duck curve ordering violated: midday %v, night %v, evening %v", midday, night, evening)
	}
	// Deep trough: midday should be well below the mean.
	if midday > 0.7*cfg.Mean {
		t.Errorf("solar trough too shallow: %v vs mean %v", midday, cfg.Mean)
	}
	// All intensities positive.
	for i, v := range s.Values {
		if v <= 0 {
			t.Fatalf("non-positive intensity %v at sample %d", v, i)
		}
	}
}

func TestSyntheticCAISOWeekendDip(t *testing.T) {
	cfg := DefaultCAISOConfig()
	s, err := NewSyntheticCAISO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the same hour on a weekday (day 0) and weekend (day 5).
	weekday := s.Values[10]
	weekend := s.Values[5*24+10]
	if weekend >= weekday {
		t.Errorf("weekend intensity %v should be below weekday %v", weekend, weekday)
	}
}

func TestSyntheticCAISOErrors(t *testing.T) {
	bad := []SyntheticCAISOConfig{
		{Mean: 230, Step: 3600, Days: 0},
		{Mean: 230, Step: 0, Days: 7},
		{Mean: 0, Step: 3600, Days: 7},
	}
	for i, cfg := range bad {
		if _, err := NewSyntheticCAISO(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestSyntheticCAISODeterministic(t *testing.T) {
	a, err := NewSyntheticCAISO(DefaultCAISOConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSyntheticCAISO(DefaultCAISOConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("generator must be deterministic")
		}
	}
}

func TestSignalInterfaceSatisfied(t *testing.T) {
	var _ Signal = Constant(0)
	var _ Signal = Trace{}
	_ = units.CarbonIntensity(0)
}
