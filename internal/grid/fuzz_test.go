package grid

import (
	"math"
	"testing"

	"fairco2/internal/units"
)

// FuzzRegionSignal throws arbitrary coefficients at the regional trace
// generator. Inputs are folded into the ranges Validate admits; the
// generator must then always produce a strictly positive, finite trace
// whose time-average is exactly the requested mean.
func FuzzRegionSignal(f *testing.F) {
	for _, p := range Profiles() {
		f.Add(p.Mean, p.SolarDepth, p.EveningRampHeight, p.NightLift,
			p.WeekendScale, p.WindAmplitude, p.WindPeriodHours,
			p.SeasonalAmplitude, p.SeasonalPeakDay)
	}
	f.Add(1e-3, 0.999, 10.0, 10.0, 10.0, 0.999, 1e-3, 0.999, 364.0)

	fold := func(v, lo, hi float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return lo
		}
		span := hi - lo
		x := math.Mod(v-lo, span)
		if x < 0 {
			x += span
		}
		return lo + x
	}

	f.Fuzz(func(t *testing.T, mean, solar, evening, night, weekend, windAmp, windPeriod, seasAmp, seasPeak float64) {
		p := RegionProfile{
			Name:              "fuzz",
			Mean:              fold(mean, 1e-3, 2000),
			SolarDepth:        fold(solar, 0, 0.999),
			EveningRampHeight: fold(evening, 0, 10),
			NightLift:         fold(night, 0, 10),
			WeekendScale:      fold(weekend, 1e-3, 10),
			WindAmplitude:     fold(windAmp, 0, 0.999),
			WindPeriodHours:   fold(windPeriod, 1e-3, 2000),
			SeasonalAmplitude: fold(seasAmp, 0, 0.999),
			SeasonalPeakDay:   fold(seasPeak, 0, 365),
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("folded profile must validate: %v (%+v)", err, p)
		}
		s, err := NewSyntheticRegion(p, units.SecondsPerHour, 7)
		if err != nil {
			t.Fatalf("generator rejected a valid profile: %v", err)
		}
		for i, v := range s.Values {
			if !(v > 0) || math.IsInf(v, 0) {
				t.Fatalf("sample %d not strictly positive and finite: %v (%+v)", i, v, p)
			}
		}
		if m := s.Mean(); math.Abs(m-p.Mean)/p.Mean > 1e-9 {
			t.Fatalf("mean %v, want %v (%+v)", m, p.Mean, p)
		}
	})
}
