package grid

import (
	"math"
	"math/rand"
	"testing"

	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

func TestProfilesRegistry(t *testing.T) {
	profiles := Profiles()
	if len(profiles) < 6 {
		t.Fatalf("registry has %d profiles, the scenario engine needs at least 6", len(profiles))
	}
	seen := map[string]bool{}
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile name %s", p.Name)
		}
		seen[p.Name] = true
		got, err := ProfileByName(p.Name)
		if err != nil {
			t.Errorf("ProfileByName(%s): %v", p.Name, err)
		}
		if got != p {
			t.Errorf("ProfileByName(%s) returned a different profile", p.Name)
		}
	}
	if _, err := ProfileByName("atlantis-1"); err == nil {
		t.Error("unknown profile should error")
	}
}

// Property: every regional trace is strictly positive, finite, and its
// time-average equals the configured mean exactly (up to float rounding).
func TestRegionTracesPositiveAndCalibrated(t *testing.T) {
	for _, p := range Profiles() {
		s, err := NewSyntheticRegion(p, units.SecondsPerHour, 14)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if s.Len() != 14*24 {
			t.Fatalf("%s: %d samples, want %d", p.Name, s.Len(), 14*24)
		}
		for i, v := range s.Values {
			if !(v > 0) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-positive or non-finite intensity %v at sample %d", p.Name, v, i)
			}
		}
		if mean := s.Mean(); math.Abs(mean-p.Mean)/p.Mean > 1e-9 {
			t.Errorf("%s: trace mean %v, want %v", p.Name, mean, p.Mean)
		}
	}
}

// Property: with the slow modulations (wind, seasonal) stripped, the shape
// is exactly periodic — any two weekdays are bitwise-identical, and a
// weekend day is exactly the weekday shape scaled by WeekendScale.
func TestRegionTracesPeriodicShape(t *testing.T) {
	for _, p := range Profiles() {
		base := p
		base.WindAmplitude, base.WindPeriodHours = 0, 0
		base.SeasonalAmplitude = 0
		s, err := NewSyntheticRegion(base, units.SecondsPerHour, 14)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		day := func(d int) []float64 { return s.Values[d*24 : (d+1)*24] }
		for h := 0; h < 24; h++ {
			// Monday of week 1 vs Thursday of week 1 vs Monday of week 2.
			if day(0)[h] != day(3)[h] || day(0)[h] != day(7)[h] {
				t.Fatalf("%s: weekday shape not periodic at hour %d: %v %v %v",
					p.Name, h, day(0)[h], day(3)[h], day(7)[h])
			}
			// Saturday is the weekday shape scaled by WeekendScale (the
			// clamp floor never binds for the registry's coefficients).
			want := day(0)[h] * p.WeekendScale
			if math.Abs(day(5)[h]-want) > 1e-9*want {
				t.Fatalf("%s: weekend hour %d = %v, want weekday x %v = %v",
					p.Name, h, day(5)[h], p.WeekendScale, want)
			}
		}
	}
}

// The full us-west profile must keep the duck-curve ordering the CAISO
// generator pins: midday solar trough below night, night below the
// evening ramp.
func TestRegionTraceDuckOrdering(t *testing.T) {
	p, err := ProfileByName("us-west")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSyntheticRegion(p, units.SecondsPerHour, 7)
	if err != nil {
		t.Fatal(err)
	}
	midday, night, evening := s.Values[13], s.Values[3], s.Values[19]
	if !(midday < night && night < evening) {
		t.Errorf("duck ordering violated: midday %v, night %v, evening %v", midday, night, evening)
	}
}

func TestRegionTraceDeterministic(t *testing.T) {
	p := Profiles()[3]
	a, err := NewSyntheticRegion(p, units.SecondsPerHour, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSyntheticRegion(p, units.SecondsPerHour, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("regional generator must be deterministic")
		}
	}
}

func TestNewSyntheticRegionErrors(t *testing.T) {
	ok := Profiles()[0]
	bad := []RegionProfile{
		{},
		{Name: "x", Mean: 0},
		{Name: "x", Mean: math.Inf(1)},
		{Name: "x", Mean: 100, SolarDepth: 1.5},
		{Name: "x", Mean: 100, EveningRampHeight: 11},
		{Name: "x", Mean: 100, NightLift: -1},
		{Name: "x", Mean: 100, WeekendScale: -0.5},
		{Name: "x", Mean: 100, WeekendScale: 1, WindAmplitude: 1},
		{Name: "x", Mean: 100, WeekendScale: 1, WindAmplitude: 0.2, WindPeriodHours: 0},
		{Name: "x", Mean: 100, WeekendScale: 1, SeasonalAmplitude: -0.1},
		{Name: "x", Mean: 100, WeekendScale: 1, SeasonalAmplitude: 0.1, SeasonalPeakDay: math.NaN()},
	}
	for i, p := range bad {
		if _, err := NewSyntheticRegion(p, units.SecondsPerHour, 7); err == nil {
			t.Errorf("profile %d: expected error", i)
		}
	}
	if _, err := NewSyntheticRegion(ok, units.SecondsPerHour, 0); err == nil {
		t.Error("zero days: expected error")
	}
	if _, err := NewSyntheticRegion(ok, 0, 7); err == nil {
		t.Error("zero step: expected error")
	}
	if _, err := NewSyntheticRegion(ok, units.Seconds(3*units.SecondsPerDay), 1); err == nil {
		t.Error("step longer than window: expected error")
	}
}

// Property: between two adjacent sample midpoints, the interpolated signal
// is monotone — it moves from one sample value to the other without
// overshoot, in the direction the endpoints order.
func TestInterpMonotoneBetweenSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64() * 1000
		}
		step := units.Seconds(1 + rng.Float64()*3600)
		s := timeseries.New(units.Seconds(rng.Float64()*100), step, values)
		for i := 0; i < n-1; i++ {
			m0 := s.TimeAt(i) + step/2
			lo, hi := values[i], values[i+1]
			if lo > hi {
				lo, hi = hi, lo
			}
			prev := s.Interp(m0)
			for k := 1; k <= 8; k++ {
				at := m0 + units.Seconds(float64(step)*float64(k)/8)
				v := s.Interp(at)
				if v < lo-1e-9 || v > hi+1e-9 {
					t.Fatalf("trial %d: Interp overshoots segment %d: %v outside [%v, %v]", trial, i, v, lo, hi)
				}
				if values[i] <= values[i+1] && v < prev-1e-9 {
					t.Fatalf("trial %d: Interp not monotone increasing on segment %d", trial, i)
				}
				if values[i] >= values[i+1] && v > prev+1e-9 {
					t.Fatalf("trial %d: Interp not monotone decreasing on segment %d", trial, i)
				}
				prev = v
			}
		}
		// At every midpoint the interpolation hits the sample exactly.
		for i := range values {
			if got := s.Interp(s.TimeAt(i) + step/2); math.Abs(got-values[i]) > 1e-9 {
				t.Fatalf("trial %d: Interp at midpoint %d = %v, want %v", trial, i, got, values[i])
			}
		}
		// Outside the covered midpoints it clamps, matching At.
		if got := s.Interp(s.Start - 1e6); got != values[0] {
			t.Fatalf("trial %d: Interp before start = %v, want %v", trial, got, values[0])
		}
		if got := s.Interp(s.End() + 1e6); got != values[n-1] {
			t.Fatalf("trial %d: Interp past end = %v, want %v", trial, got, values[n-1])
		}
	}
}

func TestInterpTraceSignal(t *testing.T) {
	s := timeseries.New(0, 3600, []float64{100, 300, 200})
	var sig Signal = InterpTrace{Series: s}
	if got := sig.At(1800); got != 100 {
		t.Errorf("At(midpoint 0) = %v", got)
	}
	// Halfway between the first two midpoints: the linear blend.
	if got := sig.At(3600); got != 200 {
		t.Errorf("At(3600) = %v, want 200", got)
	}
	if got := sig.At(-1); got != 100 {
		t.Errorf("At(-1) = %v, want clamp to first", got)
	}
	if got := sig.At(1e9); got != 200 {
		t.Errorf("At(big) = %v, want clamp to last", got)
	}
	if got := timeseries.Zeros(0, 10, 0).Interp(5); got != 0 {
		t.Errorf("empty series Interp = %v, want 0", got)
	}
}
