// Package grid models power-grid carbon intensity signals. The paper's case
// study (§8) consumes real CAISO hourly data from Electricity Maps; offline,
// we provide a synthetic duck-curve generator with the same structure
// (midday solar trough, evening ramp, weekly modulation) plus constant and
// trace-backed signals, behind a common Signal interface.
package grid

import (
	"fmt"
	"math"

	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Signal provides the grid carbon intensity at a point in time.
type Signal interface {
	// At returns the carbon intensity at time t.
	At(t units.Seconds) units.CarbonIntensity
}

// Constant is a fixed-intensity signal (e.g. a hydro-dominated grid).
type Constant units.CarbonIntensity

// At implements Signal.
func (c Constant) At(units.Seconds) units.CarbonIntensity { return units.CarbonIntensity(c) }

// Region presets used in the paper's figures. Values are representative
// 2023 annual levels from Electricity Maps.
const (
	// Sweden is a low-carbon (hydro/nuclear) grid.
	Sweden Constant = 25
	// California is the CAISO average; the instantaneous signal swings
	// widely around it (see NewSyntheticCAISO).
	California Constant = 230
	// USMidwest is a representative coal-heavy grid.
	USMidwest Constant = 600
)

// Trace is a Signal backed by a time series of intensities, clamping
// outside the covered window to the nearest sample.
type Trace struct {
	Series *timeseries.Series
}

// At implements Signal.
func (tr Trace) At(t units.Seconds) units.CarbonIntensity {
	return units.CarbonIntensity(tr.Series.At(t))
}

// SyntheticCAISOConfig parameterizes the duck-curve generator.
type SyntheticCAISOConfig struct {
	// Mean is the average intensity in gCO2e/kWh.
	Mean float64
	// SolarDepth is the fractional midday dip (0.5 halves intensity at
	// the solar peak).
	SolarDepth float64
	// EveningRampHeight is the fractional evening-peak rise.
	EveningRampHeight float64
	// WeekendScale multiplies weekend intensity (demand is lower, so the
	// renewable share is higher and intensity drops).
	WeekendScale float64
	// Step is the sampling interval.
	Step units.Seconds
	// Days is the length of the generated trace.
	Days int
}

// DefaultCAISOConfig mimics California's 2023 hourly profile: ~230
// gCO2e/kWh mean, deep midday solar trough, evening gas ramp.
func DefaultCAISOConfig() SyntheticCAISOConfig {
	return SyntheticCAISOConfig{
		Mean: 230,
		// Real CAISO hourly intensity dips to ~70-90 gCO2e/kWh at the
		// solar peak — below the IVF/HNSW carbon crossover (§8).
		SolarDepth:        0.75,
		EveningRampHeight: 0.35,
		WeekendScale:      0.92,
		Step:              units.SecondsPerHour,
		Days:              7,
	}
}

// NewSyntheticCAISO generates a duck-curve intensity trace.
func NewSyntheticCAISO(cfg SyntheticCAISOConfig) (*timeseries.Series, error) {
	if cfg.Days < 1 {
		return nil, fmt.Errorf("grid: need at least one day, got %d", cfg.Days)
	}
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("grid: step must be positive, got %v", cfg.Step)
	}
	if cfg.Mean <= 0 {
		return nil, fmt.Errorf("grid: mean intensity must be positive, got %v", cfg.Mean)
	}
	n := int(float64(cfg.Days) * units.SecondsPerDay / float64(cfg.Step))
	values := make([]float64, n)
	sum := 0.0
	for i := range values {
		t := float64(cfg.Step) * float64(i)
		values[i] = shapeAt(cfg, t)
		sum += values[i]
	}
	// Normalize so the trace's time-average equals the configured mean.
	scale := cfg.Mean * float64(n) / sum
	for i := range values {
		values[i] *= scale
	}
	return timeseries.New(0, cfg.Step, values), nil
}

// shapeAt returns the multiplicative duck-curve shape at t seconds.
func shapeAt(cfg SyntheticCAISOConfig, t float64) float64 {
	hour := math.Mod(t/units.SecondsPerHour, 24)
	day := int(t / units.SecondsPerDay)

	shape := 1.0
	// Solar trough: a Gaussian dip centered at 13:00 with ~3.5 h width.
	solar := math.Exp(-sq(hour-13) / (2 * sq(3.5)))
	shape -= cfg.SolarDepth * solar
	// Evening ramp: gas peakers covering the post-sunset demand peak,
	// centered at 19:30.
	ramp := math.Exp(-sq(hour-19.5) / (2 * sq(2)))
	shape += cfg.EveningRampHeight * ramp
	// Mild overnight elevation (no solar at all).
	night := math.Exp(-sq(math.Mod(hour+12, 24)-12) / (2 * sq(4)))
	shape += 0.08 * night

	if dayOfWeek := day % 7; dayOfWeek >= 5 {
		shape *= cfg.WeekendScale
	}
	return shape
}

func sq(x float64) float64 { return x * x }
