package requests

import (
	"math"
	"math/rand"
	"testing"

	"fairco2/internal/carbon"
	"fairco2/internal/grid"
	"fairco2/internal/optimize"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

func testLedger(t *testing.T) *Ledger {
	t.Helper()
	cost, err := optimize.NewCostModel(carbon.NewReferenceServer())
	if err != nil {
		t.Fatal(err)
	}
	return &Ledger{
		Cost:  cost,
		Model: optimize.ServingModels()[0], // IVF
		Cores: 48,
		Grid:  grid.California,
	}
}

func TestBatchRequestsByCount(t *testing.T) {
	reqs := make([]Request, 10)
	for i := range reqs {
		reqs[i] = Request{ID: i, Arrival: units.Seconds(float64(i) * 0.01)}
	}
	batches, err := BatchRequests(reqs, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3 (4+4+2)", len(batches))
	}
	if len(batches[0].Requests) != 4 || len(batches[2].Requests) != 2 {
		t.Errorf("batch sizes %d/%d/%d", len(batches[0].Requests), len(batches[1].Requests), len(batches[2].Requests))
	}
}

func TestBatchRequestsByWait(t *testing.T) {
	reqs := []Request{
		{ID: 0, Arrival: 0},
		{ID: 1, Arrival: 0.5},
		{ID: 2, Arrival: 10}, // beyond the 2 s window of request 0
	}
	batches, err := BatchRequests(reqs, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(batches))
	}
	if batches[0].Start != 2 {
		t.Errorf("first batch dispatched at %v, want oldest arrival + maxWait = 2", batches[0].Start)
	}
	if len(batches[0].Requests) != 2 || batches[1].Requests[0].ID != 2 {
		t.Error("wait-based split wrong")
	}
}

func TestBatchRequestsSortsArrivals(t *testing.T) {
	reqs := []Request{{ID: 1, Arrival: 5}, {ID: 0, Arrival: 1}}
	batches, err := BatchRequests(reqs, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if batches[0].Requests[0].ID != 0 {
		t.Error("requests should be sorted by arrival")
	}
}

func TestBatchRequestsErrors(t *testing.T) {
	if _, err := BatchRequests(nil, 1, 1); err == nil {
		t.Error("no requests")
	}
	if _, err := BatchRequests([]Request{{}}, 0, 1); err == nil {
		t.Error("bad max batch")
	}
	if _, err := BatchRequests([]Request{{}}, 1, -1); err == nil {
		t.Error("bad max wait")
	}
}

func TestPriceBatchEqualSplit(t *testing.T) {
	l := testLedger(t)
	b := Batch{Start: 100, Requests: []Request{{ID: 0}, {ID: 1}, {ID: 2}}}
	attrs, err := l.PriceBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 3 {
		t.Fatalf("got %d attributions", len(attrs))
	}
	for _, a := range attrs {
		if a.Carbon != attrs[0].Carbon {
			t.Error("symmetric requests must share equally")
		}
		if a.BatchSize != 3 {
			t.Error("batch size recorded wrong")
		}
		if a.Carbon <= 0 {
			t.Error("non-positive request carbon")
		}
	}
}

func TestLargerBatchesAmortizeBetter(t *testing.T) {
	l := testLedger(t)
	small, err := l.PriceBatch(Batch{Requests: []Request{{ID: 0}, {ID: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	big := Batch{}
	for i := 0; i < 64; i++ {
		big.Requests = append(big.Requests, Request{ID: i})
	}
	large, err := l.PriceBatch(big)
	if err != nil {
		t.Fatal(err)
	}
	if large[0].Carbon >= small[0].Carbon {
		t.Errorf("64-batch per-request carbon %v should undercut 2-batch %v", large[0].Carbon, small[0].Carbon)
	}
}

func TestPriceAllConservation(t *testing.T) {
	l := testLedger(t)
	rng := rand.New(rand.NewSource(1))
	var reqs []Request
	for i := 0; i < 137; i++ {
		reqs = append(reqs, Request{ID: i, Arrival: units.Seconds(rng.Float64() * 600)})
	}
	attrs, total, err := l.PriceAll(reqs, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != len(reqs) {
		t.Fatalf("%d attributions for %d requests", len(attrs), len(reqs))
	}
	sum := units.GramsCO2e(0)
	seen := map[int]bool{}
	for _, a := range attrs {
		sum += a.Carbon
		if seen[a.Request] {
			t.Fatalf("request %d attributed twice", a.Request)
		}
		seen[a.Request] = true
	}
	if math.Abs(float64(sum-total)) > 1e-9*float64(total) {
		t.Errorf("sum %v != total %v", sum, total)
	}
}

func TestLiveSignalsAffectRequestCarbon(t *testing.T) {
	l := testLedger(t)
	// A grid trace with cheap then expensive power.
	l.Grid = grid.Trace{Series: timeseries.New(0, 100, []float64{50, 800})}
	cheap, err := l.PriceBatch(Batch{Start: 10, Requests: []Request{{ID: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	dear, err := l.PriceBatch(Batch{Start: 150, Requests: []Request{{ID: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if cheap[0].Carbon >= dear[0].Carbon {
		t.Error("high-CI execution must cost more")
	}
	// Embodied scale doubles the embodied share.
	l.EmbodiedScale = timeseries.New(0, 100, []float64{1, 2})
	base, err := l.PriceBatch(Batch{Start: 10, Requests: []Request{{ID: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := l.PriceBatch(Batch{Start: 150, Requests: []Request{{ID: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if scaled[0].Carbon <= base[0].Carbon {
		t.Error("scaled embodied intensity must raise request carbon")
	}
}

func TestLedgerValidation(t *testing.T) {
	l := testLedger(t)
	if _, err := l.PriceBatch(Batch{}); err == nil {
		t.Error("empty batch")
	}
	bad := *l
	bad.Cost = nil
	if _, err := bad.PriceBatch(Batch{Requests: []Request{{}}}); err == nil {
		t.Error("nil cost model")
	}
	bad = *l
	bad.Cores = 0
	if _, err := bad.PriceBatch(Batch{Requests: []Request{{}}}); err == nil {
		t.Error("zero cores")
	}
	bad = *l
	bad.Grid = nil
	if _, err := bad.PriceBatch(Batch{Requests: []Request{{}}}); err == nil {
		t.Error("nil grid")
	}
	var nilLedger *Ledger
	if err := nilLedger.Validate(); err == nil {
		t.Error("nil ledger")
	}
	if _, _, err := l.PriceAll(nil, 1, 1); err == nil {
		t.Error("PriceAll with no requests")
	}
}
