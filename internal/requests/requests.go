// Package requests implements request-level carbon attribution for
// serving workloads — the finer-than-VM granularity the paper names as
// future work (§10). Requests are batched by the serving system; each
// batch's carbon is computed from the configuration's runtime and power
// under the live grid and embodied intensity signals at execution time,
// and divided among the batch's requests.
//
// Within one batch all requests are symmetric players of the batch-cost
// game, so the Shapley value is the equal split of the batch's footprint —
// the fairness machinery degenerates pleasantly here, and what carries the
// signal is (a) when the batch ran (live intensities) and (b) how full it
// was (amortization of setup and occupancy).
package requests

import (
	"errors"
	"fmt"
	"sort"

	"fairco2/internal/grid"
	"fairco2/internal/optimize"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Request is one serving request.
type Request struct {
	ID      int
	Arrival units.Seconds
}

// Batch is a group of requests executed together.
type Batch struct {
	// Start is when execution begins (the latest member's arrival).
	Start    units.Seconds
	Requests []Request
}

// BatchRequests groups arrival-ordered requests into batches: a batch is
// dispatched when it reaches maxBatch requests or when the oldest member
// has waited maxWait. Input order does not matter; requests are sorted by
// arrival.
func BatchRequests(reqs []Request, maxBatch int, maxWait units.Seconds) ([]Batch, error) {
	if len(reqs) == 0 {
		return nil, errors.New("requests: no requests to batch")
	}
	if maxBatch < 1 {
		return nil, errors.New("requests: max batch must be positive")
	}
	if maxWait < 0 {
		return nil, errors.New("requests: max wait must be non-negative")
	}
	sorted := append([]Request(nil), reqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })

	var batches []Batch
	var current []Request
	flush := func(at units.Seconds) {
		if len(current) == 0 {
			return
		}
		batches = append(batches, Batch{Start: at, Requests: current})
		current = nil
	}
	for _, r := range sorted {
		if len(current) > 0 && r.Arrival-current[0].Arrival > maxWait {
			flush(current[0].Arrival + maxWait)
		}
		current = append(current, r)
		if len(current) == maxBatch {
			flush(r.Arrival)
		}
	}
	if len(current) > 0 {
		flush(current[0].Arrival + maxWait)
	}
	return batches, nil
}

// Ledger prices batches of a serving deployment against live signals.
type Ledger struct {
	// Cost is the hardware cost model.
	Cost *optimize.CostModel
	// Model is the serving algorithm in use.
	Model optimize.ServingModel
	// Cores is the deployment's core allocation.
	Cores int
	// Grid is the live grid carbon-intensity signal.
	Grid grid.Signal
	// EmbodiedScale is the live embodied intensity multiplier (mean 1);
	// nil means uniform amortization.
	EmbodiedScale *timeseries.Series
}

// Attribution is one request's carbon share.
type Attribution struct {
	Request int
	// Carbon is the request's share of its batch's footprint.
	Carbon units.GramsCO2e
	// BatchSize records how many requests amortized the batch.
	BatchSize int
}

// Validate checks the ledger.
func (l *Ledger) Validate() error {
	switch {
	case l == nil:
		return errors.New("requests: nil ledger")
	case l.Cost == nil:
		return errors.New("requests: ledger needs a cost model")
	case l.Cores < 1:
		return errors.New("requests: ledger needs a positive core allocation")
	case l.Grid == nil:
		return errors.New("requests: ledger needs a grid signal")
	}
	return nil
}

// PriceBatch attributes one batch's carbon equally to its requests.
func (l *Ledger) PriceBatch(b Batch) ([]Attribution, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	n := len(b.Requests)
	if n == 0 {
		return nil, errors.New("requests: empty batch")
	}
	latency, err := l.Model.BatchLatency(l.Cores, n)
	if err != nil {
		return nil, err
	}
	scale := 1.0
	if l.EmbodiedScale != nil {
		scale = l.EmbodiedScale.At(b.Start)
	}
	bd := l.Cost.Carbon(l.Cores, l.Model.IndexGB, latency, l.Model.DynPower(l.Cores), l.Grid.At(b.Start), scale)
	share := units.GramsCO2e(float64(bd.Total()) / float64(n))
	out := make([]Attribution, n)
	for i, r := range b.Requests {
		out[i] = Attribution{Request: r.ID, Carbon: share, BatchSize: n}
	}
	return out, nil
}

// PriceAll batches the requests and prices every batch, returning
// attributions indexed by request ID order of the input batches, plus the
// total footprint.
func (l *Ledger) PriceAll(reqs []Request, maxBatch int, maxWait units.Seconds) ([]Attribution, units.GramsCO2e, error) {
	batches, err := BatchRequests(reqs, maxBatch, maxWait)
	if err != nil {
		return nil, 0, err
	}
	var out []Attribution
	total := units.GramsCO2e(0)
	for i, b := range batches {
		attrs, err := l.PriceBatch(b)
		if err != nil {
			return nil, 0, fmt.Errorf("requests: batch %d: %w", i, err)
		}
		for _, a := range attrs {
			total += a.Carbon
		}
		out = append(out, attrs...)
	}
	return out, total, nil
}
