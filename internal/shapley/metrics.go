package shapley

import "fairco2/internal/metrics"

// Always-on instrumentation into the process-wide registry: one atomic add
// per solver call, so the hot loops stay untouched. The estimator label
// separates exact enumeration from the sampling families, letting a
// dashboard plot samples/sec against the convergence gauge.
var (
	metricSamples = metrics.Default().NewCounterVec(
		"fairco2_shapley_samples_total",
		"Permutations evaluated by the Shapley estimators, by estimator.",
		"estimator")
	metricExactCoalitions = metrics.Default().NewCounter(
		"fairco2_shapley_exact_coalitions_total",
		"Coalition evaluations performed by exact enumeration (2^n per game).")
	metricSampledStderr = metrics.Default().NewGauge(
		"fairco2_shapley_sampled_stderr_ratio",
		"Relative standard error of the most recent SampledOrdered run: "+
			"RMS of the per-player standard errors of the mean, divided by the grand total.")
)
