package shapley

import (
	"time"

	"fairco2/internal/metrics"
)

// Always-on instrumentation into the process-wide registry: one atomic add
// per solver call, so the hot loops stay untouched. The estimator label
// separates exact enumeration from the sampling families, letting a
// dashboard plot samples/sec against the convergence gauge.
var (
	metricSamples = metrics.Default().NewCounterVec(
		"fairco2_shapley_samples_total",
		"Permutations evaluated by the Shapley estimators, by estimator.",
		"estimator")
	metricExactCoalitions = metrics.Default().NewCounter(
		"fairco2_shapley_exact_coalitions_total",
		"Coalition evaluations performed by exact enumeration (2^n per game).")
	metricSampledStderr = metrics.Default().NewGauge(
		"fairco2_shapley_sampled_stderr_ratio",
		"Relative standard error of the most recent SampledOrdered run: "+
			"RMS of the per-player standard errors of the mean, divided by the grand total.")
)

// Parallel-engine instrumentation, labeled by solver mode (build-table,
// build-table-incremental, exact-from-table, monte-carlo, antithetic,
// sampled-ordered). Busy/wall counters accumulate across runs so rate()
// yields long-run utilization; the gauges snapshot the most recent run so a
// dashboard can watch effective speedup next to the sample counters.
var (
	metricParallelRuns = metrics.Default().NewCounterVec(
		"fairco2_shapley_parallel_runs_total",
		"Parallel Shapley solver runs, by mode.",
		"mode")
	metricParallelWorkers = metrics.Default().NewGaugeVec(
		"fairco2_shapley_parallel_workers",
		"Worker count of the most recent parallel run, by mode.",
		"mode")
	metricParallelBusySeconds = metrics.Default().NewCounterVec(
		"fairco2_shapley_parallel_busy_seconds_total",
		"Cumulative per-worker busy time of the parallel solvers, by mode.",
		"mode")
	metricParallelWallSeconds = metrics.Default().NewCounterVec(
		"fairco2_shapley_parallel_wall_seconds_total",
		"Cumulative wall-clock time of the parallel solvers, by mode.",
		"mode")
	metricParallelSpeedup = metrics.Default().NewGaugeVec(
		"fairco2_shapley_parallel_speedup",
		"Effective speedup (summed worker busy time / wall time) of the most recent parallel run, by mode.",
		"mode")
	metricParallelUtilization = metrics.Default().NewGaugeVec(
		"fairco2_shapley_parallel_worker_utilization",
		"Worker utilization (busy time / workers x wall time) of the most recent parallel run, by mode.",
		"mode")
)

// Delta-engine instrumentation: plain (unlabeled) instruments, so the hot
// apply path pays one atomic add per counter and no map lookups.
var (
	metricDeltaApplies = metrics.Default().NewCounter(
		"fairco2_shapley_delta_applies_total",
		"Delta re-evaluations applied to wrapped coalition tables.")
	metricDeltaBlocksRecomputed = metrics.Default().NewCounter(
		"fairco2_shapley_delta_blocks_recomputed_total",
		"Gray-code table blocks re-enumerated (fully or partially) by delta applies.")
	metricDeltaBlocksSkipped = metrics.Default().NewCounter(
		"fairco2_shapley_delta_blocks_skipped_total",
		"Gray-code table blocks left untouched by delta applies.")
	metricDeltaSpeedup = metrics.Default().NewGauge(
		"fairco2_shapley_delta_speedup",
		"Coalition-evaluation ratio of the most recent delta apply: "+
			"full-table size / coalitions re-evaluated.")
)

// observeParallel records one parallel solver run.
func observeParallel(mode string, workers int, wall, busy time.Duration) {
	metricParallelRuns.With(mode).Inc()
	metricParallelWorkers.With(mode).Set(float64(workers))
	metricParallelBusySeconds.With(mode).Add(busy.Seconds())
	metricParallelWallSeconds.With(mode).Add(wall.Seconds())
	if wall > 0 && workers > 0 {
		metricParallelSpeedup.With(mode).Set(busy.Seconds() / wall.Seconds())
		metricParallelUtilization.With(mode).Set(busy.Seconds() / (wall.Seconds() * float64(workers)))
	}
}
