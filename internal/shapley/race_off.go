//go:build !race

package shapley

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions skip themselves under it.
const raceEnabled = false
