package shapley

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// Serial-vs-parallel benchmarks for the engine's hot paths. Names all match
// `-bench 'Shapley|MonteCarlo'` so one invocation produces the speedup
// table recorded in results/parallel_speedup.txt. The parallel variants use
// GOMAXPROCS workers (workers=0), so the measured ratio is the speedup the
// default knob delivers on the benchmarking host.

func benchGame(n int) SetFunc {
	peaks := randomPeaks(n, rand.New(rand.NewSource(1)))
	return peakOf(peaks)
}

func BenchmarkShapleyBuildTable(b *testing.B) {
	for _, n := range []int{16, 18, 20} {
		game := benchGame(n)
		b.Run(fmt.Sprintf("n=%d/serial", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildTable(n, game); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/parallel-%d", n, runtime.GOMAXPROCS(0)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildTableParallel(n, game, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkShapleyExactFromTable(b *testing.B) {
	for _, n := range []int{16, 18, 20} {
		table, err := BuildTable(n, benchGame(n))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/serial", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ExactFromTable(n, table); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/parallel-%d", n, runtime.GOMAXPROCS(0)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ExactFromTableParallel(n, table, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMonteCarloSampling(b *testing.B) {
	const n, samples = 40, 2000
	game := benchGame(n)
	b.Run("serial", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < b.N; i++ {
			if _, err := MonteCarlo(n, game, samples, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{0, 4} {
		label := fmt.Sprintf("parallel-%d", workers)
		if workers == 0 {
			label = fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0))
		}
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MonteCarloParallel(n, game, samples, int64(i), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMonteCarloAntitheticSampling(b *testing.B) {
	const n, samples = 40, 2000
	game := benchGame(n)
	b.Run("serial", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < b.N; i++ {
			if _, err := MonteCarloAntithetic(n, game, samples, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MonteCarloAntitheticParallel(n, game, samples, int64(i), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkShapleySampledOrdered(b *testing.B) {
	const n, samples = 40, 2000
	peaks := randomPeaks(n, rand.New(rand.NewSource(4)))
	newMarginals := func() OrderedMarginals {
		return func(perm []int, out []float64) {
			cur := 0.0
			for _, p := range perm {
				if peaks[p] > cur {
					out[p] = peaks[p] - cur
					cur = peaks[p]
				} else {
					out[p] = 0
				}
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		rng := rand.New(rand.NewSource(5))
		m := newMarginals()
		for i := 0; i < b.N; i++ {
			if _, err := SampledOrdered(n, m, samples, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SampledOrderedParallel(n, newMarginals, samples, int64(i), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
