package shapley

import (
	"math"
	"math/rand"
	"testing"
)

// setGameMarginals adapts a set game to an ordered game: arrival order
// doesn't matter, so ordered Shapley must match exact set-game Shapley.
func setGameMarginals(v SetFunc) OrderedMarginals {
	return func(perm []int, marginals []float64) {
		mask := uint64(0)
		prev := v(0)
		for _, p := range perm {
			mask |= 1 << uint(p)
			cur := v(mask)
			marginals[p] = cur - prev
			prev = cur
		}
	}
}

func TestExactOrderedMatchesSetGame(t *testing.T) {
	peaks := []float64{4, 1, 9, 2}
	exact, err := Exact(len(peaks), peakOf(peaks))
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := ExactOrdered(len(peaks), setGameMarginals(peakOf(peaks)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range peaks {
		approx(t, ordered[i], exact[i], 1e-9, "ordered vs set game")
	}
}

func TestExactOrderedOrderDependentGame(t *testing.T) {
	// Pairing game: arrivals pair up (1st with 2nd, 3rd with 4th...).
	// A pair costs 1; an unpaired arrival costs 2, refunded to cost share
	// when its partner arrives. Here: odd arrival contributes 2, even
	// arrival contributes -1 (total pair cost 1). With n=2 each player is
	// first in half the orders: phi = (2 + -1)/2 = 0.5 each; total 1.
	m := func(perm []int, marginals []float64) {
		for k, p := range perm {
			if k%2 == 0 {
				marginals[p] = 2
			} else {
				marginals[p] = -1
			}
		}
	}
	phi, err := ExactOrdered(2, m)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, phi[0], 0.5, 1e-12, "phi0")
	approx(t, phi[1], 0.5, 1e-12, "phi1")
}

func TestExactOrderedPermutationCount(t *testing.T) {
	// Verify all n! permutations are visited exactly once.
	seen := map[[4]int]int{}
	m := func(perm []int, marginals []float64) {
		var key [4]int
		copy(key[:], perm)
		seen[key]++
		for i := range marginals {
			marginals[i] = 0
		}
	}
	if _, err := ExactOrdered(4, m); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 24 {
		t.Fatalf("visited %d distinct permutations, want 24", len(seen))
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("permutation %v visited %d times", k, c)
		}
	}
}

func TestSampledOrderedConverges(t *testing.T) {
	peaks := []float64{4, 1, 9, 2, 6}
	exact, err := ExactOrdered(len(peaks), setGameMarginals(peakOf(peaks)))
	if err != nil {
		t.Fatal(err)
	}
	est, err := SampledOrdered(len(peaks), setGameMarginals(peakOf(peaks)), 20000, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range peaks {
		approx(t, est[i], exact[i], 0.15, "sampled ordered")
	}
}

func TestSampledOrderedEfficiencyPerSample(t *testing.T) {
	peaks := []float64{3, 8, 2}
	est, err := SampledOrdered(3, setGameMarginals(peakOf(peaks)), 1, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	sum := est[0] + est[1] + est[2]
	approx(t, sum, 8, 1e-12, "single-sample efficiency")
}

func TestOrderedErrors(t *testing.T) {
	noop := func([]int, []float64) {}
	if _, err := ExactOrdered(0, noop); err == nil {
		t.Error("n=0")
	}
	if _, err := ExactOrdered(MaxExactOrderedPlayers+1, noop); err == nil {
		t.Error("too many players")
	}
	if _, err := ExactOrdered(2, nil); err == nil {
		t.Error("nil marginals")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := SampledOrdered(0, noop, 1, rng); err == nil {
		t.Error("sampled n=0")
	}
	if _, err := SampledOrdered(2, noop, 0, rng); err == nil {
		t.Error("sampled samples=0")
	}
	if _, err := SampledOrdered(2, nil, 1, rng); err == nil {
		t.Error("sampled nil marginals")
	}
	if _, err := SampledOrdered(2, noop, 1, nil); err == nil {
		t.Error("sampled nil rng")
	}
}

func TestMonteCarloUnbiasedAcrossSeeds(t *testing.T) {
	// Averaging estimates across many seeds should approach exact values
	// much more closely than a single run — a sanity check on bias.
	peaks := []float64{10, 4, 4, 7, 1}
	n := len(peaks)
	exact, err := Exact(n, peakOf(peaks))
	if err != nil {
		t.Fatal(err)
	}
	avg := make([]float64, n)
	const seeds = 50
	for s := 0; s < seeds; s++ {
		est, err := MonteCarlo(n, peakOf(peaks), 200, rand.New(rand.NewSource(int64(s))))
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range est {
			avg[i] += v / seeds
		}
	}
	for i := range exact {
		if math.Abs(avg[i]-exact[i]) > 0.05*(1+exact[i]) {
			t.Errorf("player %d: averaged estimate %v vs exact %v", i, avg[i], exact[i])
		}
	}
}
