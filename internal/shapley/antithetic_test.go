package shapley

import (
	"math"
	"math/rand"
	"testing"
)

func TestAntitheticMatchesExact(t *testing.T) {
	peaks := []float64{10, 4, 4, 7, 1, 0, 3}
	exact, err := Exact(len(peaks), peakOf(peaks))
	if err != nil {
		t.Fatal(err)
	}
	est, err := MonteCarloAntithetic(len(peaks), peakOf(peaks), 20000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		approx(t, est[i], exact[i], 0.1, "antithetic estimate")
	}
}

func TestAntitheticReducesVariance(t *testing.T) {
	// Compare estimator variance over many seeds at the same budget.
	peaks := []float64{12, 9, 5, 5, 3, 2, 1, 1}
	n := len(peaks)
	exact, err := Exact(n, peakOf(peaks))
	if err != nil {
		t.Fatal(err)
	}
	const seeds = 120
	const budget = 64
	mse := func(estimate func(seed int64) []float64) float64 {
		total := 0.0
		for s := int64(0); s < seeds; s++ {
			est := estimate(s)
			for i := range exact {
				d := est[i] - exact[i]
				total += d * d
			}
		}
		return total / float64(seeds)
	}
	plainMSE := mse(func(seed int64) []float64 {
		est, err := MonteCarlo(n, peakOf(peaks), budget, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return est
	})
	antiMSE := mse(func(seed int64) []float64 {
		est, err := MonteCarloAntithetic(n, peakOf(peaks), budget, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return est
	})
	t.Logf("MSE at %d samples: plain %.4f, antithetic %.4f", budget, plainMSE, antiMSE)
	if antiMSE >= plainMSE {
		t.Errorf("antithetic MSE %v should beat plain %v on a monotone game", antiMSE, plainMSE)
	}
}

func TestAntitheticSingleSampleEfficiency(t *testing.T) {
	// Each permutation's marginals telescope, so any even budget is
	// exactly efficient.
	peaks := []float64{3, 8, 2}
	est, err := MonteCarloAntithetic(3, peakOf(peaks), 2, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	sum := est[0] + est[1] + est[2]
	if math.Abs(sum-8) > 1e-12 {
		t.Errorf("efficiency violated: %v", sum)
	}
}

func TestAntitheticErrors(t *testing.T) {
	ok := func(uint64) float64 { return 0 }
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarloAntithetic(0, ok, 2, rng); err == nil {
		t.Error("n=0")
	}
	if _, err := MonteCarloAntithetic(64, ok, 2, rng); err == nil {
		t.Error("n=64")
	}
	if _, err := MonteCarloAntithetic(2, ok, 3, rng); err == nil {
		t.Error("odd samples")
	}
	if _, err := MonteCarloAntithetic(2, ok, 0, rng); err == nil {
		t.Error("zero samples")
	}
	if _, err := MonteCarloAntithetic(2, ok, 2, nil); err == nil {
		t.Error("nil rng")
	}
}
