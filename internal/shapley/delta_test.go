package shapley

import (
	"errors"
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

// deltaGame is the test stand-in for the attribution demand-peak game: one
// integer-valued demand vector per player, coalition value = peak of the
// summed member vectors. Integer values make add/remove arithmetic exact,
// so the incremental enumeration contract (bitwise equality to a fresh
// build for any walk order) holds and every comparison below can demand
// Float64bits equality.
type deltaGame struct {
	slices int
	vecs   [][]float64
}

func randomVec(rng *rand.Rand, slices, maxCores int) []float64 {
	vec := make([]float64, slices)
	for t := range vec {
		vec[t] = float64(rng.Intn(maxCores + 1))
	}
	return vec
}

func randomDeltaGame(rng *rand.Rand, n, slices int) *deltaGame {
	g := &deltaGame{slices: slices, vecs: make([][]float64, n)}
	for i := range g.vecs {
		g.vecs[i] = randomVec(rng, slices, 7)
	}
	return g
}

func cloneVecs(vecs [][]float64) [][]float64 {
	out := make([][]float64, len(vecs))
	for i, v := range vecs {
		out[i] = append([]float64(nil), v...)
	}
	return out
}

// plain returns the O(|S| * slices) scratch characteristic function.
func (g *deltaGame) plain() SetFunc {
	return func(mask uint64) float64 {
		peak := 0.0
		for t := 0; t < g.slices; t++ {
			s := 0.0
			for m := mask; m != 0; m &= m - 1 {
				s += g.vecs[bits.TrailingZeros64(m)][t]
			}
			if s > peak {
				peak = s
			}
		}
		return peak
	}
}

// factory returns fresh incremental state per call, like the attribution
// demand-peak game's factory.
func (g *deltaGame) factory() func() (func(int), func(int), func() float64) {
	return func() (func(int), func(int), func() float64) {
		demand := make([]float64, g.slices)
		add := func(i int) {
			for t, v := range g.vecs[i] {
				demand[t] += v
			}
		}
		remove := func(i int) {
			for t, v := range g.vecs[i] {
				demand[t] -= v
			}
		}
		value := func() float64 {
			peak := 0.0
			for _, d := range demand {
				if d > peak {
					peak = d
				}
			}
			return peak
		}
		return add, remove, value
	}
}

// requireTableBits asserts got == want entry-for-entry at the bit level.
func requireTableBits(t *testing.T, ctx string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: table length %d != %d", ctx, len(got), len(want))
	}
	for m := range got {
		if math.Float64bits(got[m]) != math.Float64bits(want[m]) {
			t.Fatalf("%s: mask %#x: delta %v (%016x) != scratch %v (%016x)",
				ctx, m, got[m], math.Float64bits(got[m]), want[m], math.Float64bits(want[m]))
		}
	}
}

// TestDeltaTableDifferential is the 200-seed harness the delta engine is
// pinned by: random games, random chained perturbations (single-player,
// multi-player, revert-to-original), random worker counts everywhere, and
// after every apply the wrapped table must equal a scratch rebuild
// Float64bits-exactly — via both the plain and the incremental builder —
// with fingerprints matching a freshly wrapped table and stats matching
// the affected-coalition count exactly.
func TestDeltaTableDifferential(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		if seed%37 == 0 {
			n = 11 + rng.Intn(3) // a few larger games past one block
		}
		slices := 1 + rng.Intn(6)
		g := randomDeltaGame(rng, n, slices)
		orig := cloneVecs(g.vecs)

		var dt *DeltaTable
		var err error
		if seed%2 == 0 {
			dt, err = NewDeltaTable(n, g.plain(), 1+rng.Intn(4))
		} else {
			dt, err = NewDeltaTableIncremental(n, g.factory(), 1+rng.Intn(4))
		}
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}

		steps := 3 + rng.Intn(3)
		for step := 0; step < steps; step++ {
			var changed uint64
			switch step % 3 {
			case 0: // single-player perturbation
				p := rng.Intn(n)
				g.vecs[p] = randomVec(rng, slices, 7)
				changed = 1 << uint(p)
			case 1: // multi-player perturbation
				for j := 0; j <= rng.Intn(3); j++ {
					p := rng.Intn(n)
					g.vecs[p] = randomVec(rng, slices, 7)
					changed |= 1 << uint(p)
				}
			default: // revert players to their original vectors
				for p := 0; p < n; p++ {
					if rng.Intn(2) == 0 {
						g.vecs[p] = append([]float64(nil), orig[p]...)
						changed |= 1 << uint(p)
					}
				}
				if changed == 0 {
					g.vecs[0] = append([]float64(nil), orig[0]...)
					changed = 1
				}
			}

			var stats DeltaStats
			if step%2 == 0 {
				stats, err = dt.ApplyIncremental(changed, g.factory(), 1+rng.Intn(4))
			} else {
				stats, err = dt.Apply(changed, g.plain(), 1+rng.Intn(4))
			}
			if err != nil {
				t.Fatalf("seed %d step %d: apply: %v", seed, step, err)
			}

			scratch, err := BuildTableParallel(n, g.plain(), 1+rng.Intn(3))
			if err != nil {
				t.Fatalf("seed %d step %d: scratch: %v", seed, step, err)
			}
			incr, err := BuildTableIncrementalParallel(n, g.factory(), 1+rng.Intn(3))
			if err != nil {
				t.Fatalf("seed %d step %d: scratch incremental: %v", seed, step, err)
			}
			requireTableBits(t, "delta vs BuildTableParallel", dt.Table(), scratch)
			requireTableBits(t, "delta vs BuildTableIncrementalParallel", dt.Table(), incr)

			// The Shapley reduction over the delta table must match too.
			wantPhi, err := ExactFromTable(n, scratch)
			if err != nil {
				t.Fatalf("seed %d step %d: phi: %v", seed, step, err)
			}
			gotPhi, err := ExactFromTableParallel(n, dt.Table(), 1+rng.Intn(3))
			if err != nil {
				t.Fatalf("seed %d step %d: phi from delta: %v", seed, step, err)
			}
			for i := range wantPhi {
				if math.Float64bits(gotPhi[i]) != math.Float64bits(wantPhi[i]) {
					t.Fatalf("seed %d step %d: phi[%d] %v != %v", seed, step, i, gotPhi[i], wantPhi[i])
				}
			}

			// Fingerprints must equal a freshly wrapped table's.
			fresh := newDeltaFromTable(n, scratch)
			for b, fp := range fresh.BlockFingerprints() {
				if dt.BlockFingerprints()[b] != fp {
					t.Fatalf("seed %d step %d: block %d fingerprint %08x != fresh %08x",
						seed, step, b, dt.BlockFingerprints()[b], fp)
				}
			}

			// Stats invariants: the subcube decomposition touches exactly the
			// coalitions containing a changed player, and every block is
			// either recomputed or skipped.
			if got := stats.BlocksRecomputed + stats.BlocksSkipped; got != dt.Blocks() {
				t.Fatalf("seed %d step %d: recomputed %d + skipped %d != blocks %d",
					seed, step, stats.BlocksRecomputed, stats.BlocksSkipped, dt.Blocks())
			}
			k := bits.OnesCount64(changed)
			wantCoals := 1<<uint(n) - 1<<uint(n-k)
			if stats.Coalitions != wantCoals {
				t.Fatalf("seed %d step %d: %d coalitions re-evaluated, want %d (n=%d, |changed|=%d)",
					seed, step, stats.Coalitions, wantCoals, n, k)
			}
			if stats.BlocksChanged > stats.BlocksRecomputed {
				t.Fatalf("seed %d step %d: changed %d > recomputed %d",
					seed, step, stats.BlocksChanged, stats.BlocksRecomputed)
			}
		}
	}
}

// TestDeltaTableDegenerate covers the degenerate games the differential
// randomness rarely lands on exactly.
func TestDeltaTableDegenerate(t *testing.T) {
	cases := []struct {
		name string
		n    int
		vec  func(i int) []float64
	}{
		{"single-player", 1, func(int) []float64 { return []float64{3, 1} }},
		{"zero-demand", 4, func(int) []float64 { return []float64{0, 0, 0} }},
		{"all-equal-demand", 5, func(int) []float64 { return []float64{2, 2} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := &deltaGame{slices: len(tc.vec(0))}
			for i := 0; i < tc.n; i++ {
				g.vecs = append(g.vecs, tc.vec(i))
			}
			dt, err := NewDeltaTableIncremental(tc.n, g.factory(), 1)
			if err != nil {
				t.Fatal(err)
			}

			// Re-applying the unchanged game must keep every fingerprint.
			stats, err := dt.ApplyIncremental(1, g.factory(), 1)
			if err != nil {
				t.Fatal(err)
			}
			if stats.BlocksChanged != 0 {
				t.Errorf("no-op apply changed %d block fingerprints", stats.BlocksChanged)
			}

			// A real perturbation must track the scratch rebuild bit-for-bit.
			g.vecs[0] = make([]float64, g.slices)
			for s := range g.vecs[0] {
				g.vecs[0][s] = float64(5 + s)
			}
			if _, err := dt.Apply(1, g.plain(), 1); err != nil {
				t.Fatal(err)
			}
			scratch, err := BuildTable(tc.n, g.plain())
			if err != nil {
				t.Fatal(err)
			}
			requireTableBits(t, tc.name, dt.Table(), scratch)
		})
	}
}

// TestDeltaTableWorkerInvariance pins the determinism contract: the same
// delta applied with different worker counts yields identical tables,
// fingerprints and stats.
func TestDeltaTableWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 9
	g := randomDeltaGame(rng, n, 4)
	build := func() *DeltaTable {
		dt, err := NewDeltaTableIncremental(n, g.factory(), 1)
		if err != nil {
			t.Fatal(err)
		}
		return dt
	}
	base := cloneVecs(g.vecs)
	tables := make([]*DeltaTable, 4)
	statses := make([]DeltaStats, 4)
	for w := 1; w <= 4; w++ {
		g.vecs = cloneVecs(base)
		dt := build()
		g.vecs[2] = []float64{9, 9, 0, 1}
		g.vecs[7] = []float64{0, 0, 0, 0}
		stats, err := dt.ApplyIncremental(1<<2|1<<7, g.factory(), w)
		if err != nil {
			t.Fatal(err)
		}
		tables[w-1], statses[w-1] = dt, stats
	}
	for w := 1; w < 4; w++ {
		requireTableBits(t, "worker invariance", tables[w].Table(), tables[0].Table())
		for b := range tables[0].BlockFingerprints() {
			if tables[w].BlockFingerprints()[b] != tables[0].BlockFingerprints()[b] {
				t.Fatalf("workers=%d: block %d fingerprint differs", w+1, b)
			}
		}
		if statses[w] != statses[0] {
			t.Fatalf("workers=%d: stats %+v != %+v", w+1, statses[w], statses[0])
		}
	}
}

func TestDeltaTableErrors(t *testing.T) {
	g := randomDeltaGame(rand.New(rand.NewSource(1)), 3, 2)
	dt, err := NewDeltaTable(3, g.plain(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dt.Apply(1, nil, 1); !errors.Is(err, ErrNilGame) {
		t.Errorf("nil SetFunc: got %v, want ErrNilGame", err)
	}
	if _, err := dt.ApplyIncremental(1, nil, 1); !errors.Is(err, ErrNilGame) {
		t.Errorf("nil factory: got %v, want ErrNilGame", err)
	}
	for _, workers := range []int{1, 2} {
		if _, err := dt.ApplyIncremental(1, func() (func(int), func(int), func() float64) {
			return nil, nil, nil
		}, workers); !errors.Is(err, ErrNilGame) {
			t.Errorf("nil triple (workers=%d): got %v, want ErrNilGame", workers, err)
		}
	}
	if _, err := dt.Apply(1<<3, g.plain(), 1); !errors.Is(err, ErrChangedPlayers) {
		t.Errorf("out-of-range mask: got %v, want ErrChangedPlayers", err)
	}
	if _, err := dt.ApplyIncremental(1<<40, g.factory(), 1); !errors.Is(err, ErrChangedPlayers) {
		t.Errorf("far out-of-range mask: got %v, want ErrChangedPlayers", err)
	}
	if _, err := NewDeltaTable(0, g.plain(), 1); !errors.Is(err, ErrNoPlayers) {
		t.Errorf("n=0: got %v, want ErrNoPlayers", err)
	}
	if _, err := NewDeltaTable(MaxExactPlayers+1, g.plain(), 1); !errors.Is(err, ErrTooManyExactPlayers) {
		t.Errorf("n too large: got %v, want ErrTooManyExactPlayers", err)
	}
	if _, err := NewDeltaTableIncremental(3, nil, 1); !errors.Is(err, ErrNilGame) {
		t.Errorf("nil factory at build: got %v, want ErrNilGame", err)
	}

	// A panicking game inside a parallel delta apply must surface as a
	// *WorkerPanicError, like every other parallel entry point.
	if _, err := dt.Apply(1, func(uint64) float64 { panic("boom") }, 2); !errors.Is(err, ErrWorkerPanic) {
		t.Errorf("panicking game: got %v, want ErrWorkerPanic", err)
	}

	// changed == 0 is a no-op that skips everything.
	before := append([]float64(nil), dt.Table()...)
	stats, err := dt.Apply(0, g.plain(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksSkipped != dt.Blocks() || stats.BlocksRecomputed != 0 || stats.Coalitions != 0 {
		t.Errorf("no-op apply stats %+v", stats)
	}
	requireTableBits(t, "no-op apply", dt.Table(), before)
}

// TestExactFromTableIntoMatchesExactFromTable pins the scratch-arena
// reduction to the allocating one, bit for bit.
func TestExactFromTableIntoMatchesExactFromTable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		table := make([]float64, 1<<uint(n))
		for i := range table {
			table[i] = rng.Float64() * 100
		}
		want, err := ExactFromTable(n, table)
		if err != nil {
			t.Fatal(err)
		}
		phi := make([]float64, n)
		w := make([]float64, n)
		// Dirty scratch must not leak into the result.
		for i := range phi {
			phi[i], w[i] = math.Inf(1), -1
		}
		if err := ExactFromTableInto(n, table, phi, w); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(phi[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: phi[%d] %v != %v", trial, i, phi[i], want[i])
			}
		}
	}
	if err := ExactFromTableInto(2, make([]float64, 4), make([]float64, 1), make([]float64, 2)); !errors.Is(err, ErrScratchSize) {
		t.Error("short phi scratch accepted")
	}
	if err := ExactFromTableInto(2, make([]float64, 3), make([]float64, 2), make([]float64, 2)); !errors.Is(err, ErrTableSize) {
		t.Error("bad table length accepted")
	}
}

// TestPeakGameIntoMatchesPeakGame pins the allocation-free peak-game
// solver to the allocating one — including heavy ties, where the insertion
// sort and sort.Slice may order tied players differently but tied peaks
// contribute zero-height increments, so phi is bitwise-identical — and the
// large-n fallback path.
func TestPeakGameIntoMatchesPeakGame(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	lengths := []int{1, 2, 7, 16, insertionSortMax, insertionSortMax + 1, 150}
	for _, n := range lengths {
		peaks := make([]float64, n)
		for i := range peaks {
			peaks[i] = float64(rng.Intn(4)) // heavy ties on purpose
		}
		want, err := PeakGame(peaks)
		if err != nil {
			t.Fatal(err)
		}
		phi := make([]float64, n)
		idx := make([]int, n)
		if err := PeakGameInto(peaks, phi, idx); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(phi[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d: phi[%d] %v != %v", n, i, phi[i], want[i])
			}
		}
	}
	if err := PeakGameInto(nil, nil, nil); !errors.Is(err, ErrNoPlayers) {
		t.Error("empty peaks accepted")
	}
	if err := PeakGameInto([]float64{1, 2}, make([]float64, 2), make([]int, 1)); !errors.Is(err, ErrScratchSize) {
		t.Error("short idx scratch accepted")
	}
	if err := PeakGameInto([]float64{1, -2}, make([]float64, 2), make([]int, 2)); err == nil {
		t.Error("negative peak accepted")
	}
}

// Zero-alloc pins for the delta hot loops, mirroring internal/stream's
// AllocsPerRun pattern behind the race_on/race_off build tags.

func TestDeltaApplyDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race for the pin")
	}
	g := randomDeltaGame(rand.New(rand.NewSource(3)), 10, 4)
	dt, err := NewDeltaTableIncremental(10, g.factory(), 1)
	if err != nil {
		t.Fatal(err)
	}

	// The factory hands back one preallocated game, reset by the unwind
	// contract between subcubes, so steady-state applies touch no heap.
	add, remove, value := g.factory()()
	factory := func() (func(int), func(int), func() float64) { return add, remove, value }
	avg := testing.AllocsPerRun(100, func() {
		if _, err := dt.ApplyIncremental(1<<3|1<<8, factory, 1); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("ApplyIncremental allocates %v times per run, want 0", avg)
	}

	plain := g.plain()
	avg = testing.AllocsPerRun(100, func() {
		if _, err := dt.Apply(1<<2, plain, 1); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("Apply allocates %v times per run, want 0", avg)
	}
}

func TestExactScratchPathsDoNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race for the pin")
	}
	g := randomDeltaGame(rand.New(rand.NewSource(5)), 10, 4)
	dt, err := NewDeltaTableIncremental(10, g.factory(), 1)
	if err != nil {
		t.Fatal(err)
	}
	phi := make([]float64, 10)
	w := make([]float64, 10)
	avg := testing.AllocsPerRun(50, func() {
		if err := ExactFromTableInto(10, dt.Table(), phi, w); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("ExactFromTableInto allocates %v times per run, want 0", avg)
	}

	peaks := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	pphi := make([]float64, len(peaks))
	idx := make([]int, len(peaks))
	avg = testing.AllocsPerRun(100, func() {
		if err := PeakGameInto(peaks, pphi, idx); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("PeakGameInto allocates %v times per run, want 0", avg)
	}
}
