package shapley

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime/debug"

	"fairco2/internal/checkpoint"
)

// Checkpointed exact enumeration. A 24-player table is 2^24 coalition
// evaluations — hours of work for an expensive incremental game — enumerated
// in the same fixed gray-code blocks as BuildTableIncrementalParallel. Each
// block covers a contiguous mask range [b<<low, (b+1)<<low), so a snapshot
// is simply the set of finished blocks plus their table slices, flushed
// periodically. Because the block decomposition is independent of worker
// count and each block starts from fresh state, a resumed build produces a
// table bitwise-identical to an uninterrupted one.

// tableSweep is the live progress of a checkpointed table build. Snapshots
// use a compact binary payload (the table is 8 bytes per coalition; JSON
// would triple that): a little-endian header {n, blocks}, a done bitmap,
// then the table values of each done block in ascending block order.
type tableSweep struct {
	n, low int
	done   []bool
	table  []float64
}

// Snapshot implements checkpoint.Resumable.
func (t *tableSweep) Snapshot() ([]byte, error) {
	blockLen := 1 << uint(t.low)
	doneBlocks := 0
	for _, d := range t.done {
		if d {
			doneBlocks++
		}
	}
	bitmap := (len(t.done) + 7) / 8
	buf := make([]byte, 8+bitmap+doneBlocks*blockLen*8)
	binary.LittleEndian.PutUint32(buf, uint32(t.n))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(t.done)))
	off := 8 + bitmap
	for b, d := range t.done {
		if !d {
			continue
		}
		buf[8+b/8] |= 1 << uint(b%8)
		for _, v := range t.table[b*blockLen : (b+1)*blockLen] {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	return buf, nil
}

// Restore implements checkpoint.Resumable.
func (t *tableSweep) Restore(payload []byte) error {
	if len(payload) < 8 {
		return fmt.Errorf("%w: table state shorter than its header", checkpoint.ErrCorruptCheckpoint)
	}
	if n := int(binary.LittleEndian.Uint32(payload)); n != t.n {
		return fmt.Errorf("%w: snapshot is a %d-player table, this build has %d players",
			checkpoint.ErrStateMismatch, n, t.n)
	}
	if blocks := int(binary.LittleEndian.Uint32(payload[4:])); blocks != len(t.done) {
		return fmt.Errorf("%w: snapshot has %d blocks, this build %d", checkpoint.ErrCorruptCheckpoint, blocks, len(t.done))
	}
	blockLen := 1 << uint(t.low)
	bitmap := (len(t.done) + 7) / 8
	off := 8 + bitmap
	if len(payload) < off {
		return fmt.Errorf("%w: truncated table bitmap", checkpoint.ErrCorruptCheckpoint)
	}
	for b := range t.done {
		if payload[8+b/8]&(1<<uint(b%8)) == 0 {
			continue
		}
		if len(payload) < off+blockLen*8 {
			return fmt.Errorf("%w: truncated table block %d", checkpoint.ErrCorruptCheckpoint, b)
		}
		for i := 0; i < blockLen; i++ {
			t.table[b*blockLen+i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		t.done[b] = true
	}
	if off != len(payload) {
		return fmt.Errorf("%w: %d trailing bytes in table state", checkpoint.ErrCorruptCheckpoint, len(payload)-off)
	}
	return nil
}

// BuildTableIncrementalCheckpointed is BuildTableIncrementalParallel with
// context cancellation and crash-safe checkpoint/resume: finished gray-code
// blocks are flushed to the checkpoint store every ck.Every blocks, and a
// restart recomputes only the missing blocks. With a disabled spec it
// degrades to BuildTableIncrementalParallel. The snapshot records only the
// player count, not the game itself — resuming against a different
// characteristic function silently builds a mixed table, exactly like
// resuming a Monte Carlo sweep with a different seed would, so callers must
// key the checkpoint directory to the game (the CLIs use one directory per
// run configuration).
func BuildTableIncrementalCheckpointed(ctx context.Context, n int, newGame func() (add, remove func(player int), value func() float64), workers int, ck checkpoint.Spec) ([]float64, error) {
	if !ck.Enabled() {
		return BuildTableIncrementalParallel(n, newGame, workers)
	}
	if err := checkExactN(n); err != nil {
		return nil, err
	}
	if newGame == nil {
		return nil, ErrNilGame
	}
	prefixBits := min(n, incrementalPrefixBits)
	low := n - prefixBits
	blocks := 1 << uint(prefixBits)
	sweep := &tableSweep{
		n:     n,
		low:   low,
		done:  make([]bool, blocks),
		table: make([]float64, 1<<uint(n)),
	}
	store, err := checkpoint.Open(ck.Dir, "shapley-table")
	if err != nil {
		return nil, err
	}
	if _, err := store.RestoreLatest(sweep); err != nil {
		return nil, err
	}
	enumerated := 0
	err = checkpoint.RunUnits(ctx, checkpoint.RunConfig{
		Units:   blocks,
		Workers: min(resolveWorkers(workers), blocks),
		Every:   ck.Every,
		Skip:    func(b int) bool { return sweep.done[b] },
		Run: func(b int) (err error) {
			// Same panic isolation as runWorkers: a panicking game fails
			// the build with a typed error (after the final snapshot of
			// every intact block) instead of crashing the process.
			defer func() {
				if r := recover(); r != nil {
					err = &WorkerPanicError{Worker: b, Value: r, Stack: debug.Stack()}
				}
			}()
			return enumerateBlock(low, b, newGame, sweep.table)
		},
		Complete: func(b int) {
			sweep.done[b] = true
			enumerated++
			store.TouchAge()
		},
		Save:    func() error { return store.SaveResumable(sweep) },
		HoldDir: ck.Dir,
	})
	metricExactCoalitions.Add(float64(enumerated * (1 << uint(low))))
	if err != nil {
		return nil, err
	}
	return sweep.table, nil
}
