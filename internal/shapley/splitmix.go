package shapley

// SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
// generators", OOPSLA 2014) is the seed-derivation function behind the
// parallel sampling estimators: each worker's math/rand source is seeded
// with one output of a SplitMix64 stream started at the caller's seed.
// The generator's single-word state and full-period mixing make the derived
// seeds statistically independent even for adjacent caller seeds, which a
// naive seed+workerIndex scheme does not guarantee (math/rand sources
// seeded with consecutive integers are measurably correlated).

// splitMix64 advances the state by the 64-bit golden-ratio increment and
// returns the mixed output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// WorkerSeeds derives the per-worker rng seeds the parallel sampling
// estimators use for a given caller seed and worker count: the first
// `workers` outputs of a SplitMix64 stream started at seed. The mapping is
// pure, so (seed, workers) fully determines every worker's sample stream —
// the determinism contract of MonteCarloParallel and friends. It is
// exported so tests and callers can reproduce a parallel run's shards with
// the serial estimators.
func WorkerSeeds(seed int64, workers int) []int64 {
	if workers < 1 {
		return nil
	}
	state := uint64(seed)
	out := make([]int64, workers)
	for w := range out {
		out[w] = int64(splitMix64(&state))
	}
	return out
}
