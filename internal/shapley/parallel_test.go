package shapley

import (
	"math"
	"math/rand"
	"testing"
)

// The differential suite: every parallel estimator is checked against the
// serial core it wraps. Exact solvers must agree bit-for-bit; sampling
// solvers must agree bit-for-bit with a serial emulation of their sharding
// scheme (WorkerSeeds + shareSamples + weighted reduction), which pins the
// determinism contract rather than just a statistical property.

// randomPeaks returns n random integer-valued peaks — integer values keep
// every incremental float update exact, so serial and parallel table
// builders must agree to the last bit.
func randomPeaks(n int, rng *rand.Rand) []float64 {
	peaks := make([]float64, n)
	for i := range peaks {
		peaks[i] = float64(rng.Intn(1000))
	}
	return peaks
}

func equalSlices(t *testing.T, got, want []float64, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", context, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
			t.Fatalf("%s: index %d: parallel %v != serial %v", context, i, got[i], want[i])
		}
	}
}

// TestExactParallelDifferential is the core differential test demanded by
// the engine's contract: 200 randomized games over n = 2..12 players, each
// checked with a varying worker count, asserting bitwise equality of
// BuildTable, ExactFromTable and the composed Exact against the serial
// solvers. Run under -race in CI.
func TestExactParallelDifferential(t *testing.T) {
	for seed := 0; seed < 200; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + seed%11 // cycles 2..12
		workers := 1 + seed%8
		peaks := randomPeaks(n, rng)
		game := peakOf(peaks)

		serialTable, err := BuildTable(n, game)
		if err != nil {
			t.Fatal(err)
		}
		parallelTable, err := BuildTableParallel(n, game, workers)
		if err != nil {
			t.Fatal(err)
		}
		equalSlices(t, parallelTable, serialTable, "BuildTableParallel")

		// A second table with arbitrary float values exercises the solver
		// beyond monotone games.
		floatTable := make([]float64, 1<<uint(n))
		for i := range floatTable {
			floatTable[i] = rng.NormFloat64() * 100
		}
		serialPhi, err := ExactFromTable(n, floatTable)
		if err != nil {
			t.Fatal(err)
		}
		parallelPhi, err := ExactFromTableParallel(n, floatTable, workers)
		if err != nil {
			t.Fatal(err)
		}
		equalSlices(t, parallelPhi, serialPhi, "ExactFromTableParallel")

		serialExact, err := Exact(n, game)
		if err != nil {
			t.Fatal(err)
		}
		parallelExact, err := ExactParallel(n, game, workers)
		if err != nil {
			t.Fatal(err)
		}
		equalSlices(t, parallelExact, serialExact, "ExactParallel")
	}
}

// TestBuildTableIncrementalParallelDifferential checks the gray-code block
// enumerator against the serial DFS builder on integer-valued demand-curve
// games (the attribution workload), where both are exact.
func TestBuildTableIncrementalParallelDifferential(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		n := 2 + seed%11
		workers := 1 + seed%5
		slices := 4 + rng.Intn(8)
		// Random integer rectangular demands, as in schedule attribution.
		starts := make([]int, n)
		ends := make([]int, n)
		cores := make([]float64, n)
		for i := 0; i < n; i++ {
			starts[i] = rng.Intn(slices)
			ends[i] = starts[i] + 1 + rng.Intn(slices-starts[i])
			cores[i] = float64(1 + rng.Intn(64))
		}
		makeGame := func() (func(int), func(int), func() float64) {
			demand := make([]float64, slices)
			add := func(i int) {
				for t := starts[i]; t < ends[i]; t++ {
					demand[t] += cores[i]
				}
			}
			remove := func(i int) {
				for t := starts[i]; t < ends[i]; t++ {
					demand[t] -= cores[i]
				}
			}
			value := func() float64 {
				peak := 0.0
				for _, d := range demand {
					if d > peak {
						peak = d
					}
				}
				return peak
			}
			return add, remove, value
		}
		add, remove, value := makeGame()
		serial, err := BuildTableIncremental(n, add, remove, value)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := BuildTableIncrementalParallel(n, makeGame, workers)
		if err != nil {
			t.Fatal(err)
		}
		equalSlices(t, parallel, serial, "BuildTableIncrementalParallel")
	}
}

// emulateSharded reproduces the parallel sampling scheme with the serial
// estimators: per-worker seeds from WorkerSeeds, contiguous shares, and the
// weighted in-order reduction. Bitwise agreement with the parallel
// estimator proves the engine is exactly "the serial core, sharded".
func emulateSharded(n, samples, workers, unit int, seed int64, run func(share int, rng *rand.Rand) ([]float64, error)) ([]float64, error) {
	units := samples / unit
	if workers > units {
		workers = units
	}
	shares := shareSamples(units, workers)
	seeds := WorkerSeeds(seed, workers)
	phi := make([]float64, n)
	for w := 0; w < workers; w++ {
		est, err := run(shares[w]*unit, rand.New(rand.NewSource(seeds[w])))
		if err != nil {
			return nil, err
		}
		weight := float64(shares[w]*unit) / float64(samples)
		for i, v := range est {
			phi[i] += v * weight
		}
	}
	return phi, nil
}

func TestMonteCarloParallelMatchesSerialShards(t *testing.T) {
	for seed := 0; seed < 60; seed++ {
		rng := rand.New(rand.NewSource(int64(2000 + seed)))
		n := 2 + seed%11
		workers := 1 + seed%6
		samples := workers + rng.Intn(40)
		peaks := randomPeaks(n, rng)
		game := peakOf(peaks)

		got, err := MonteCarloParallel(n, game, samples, int64(seed), workers)
		if err != nil {
			t.Fatal(err)
		}
		want, err := emulateSharded(n, samples, workers, 1, int64(seed),
			func(share int, rng *rand.Rand) ([]float64, error) {
				return MonteCarlo(n, game, share, rng)
			})
		if err != nil {
			t.Fatal(err)
		}
		equalSlices(t, got, want, "MonteCarloParallel")
	}
}

func TestMonteCarloAntitheticParallelMatchesSerialShards(t *testing.T) {
	for seed := 0; seed < 60; seed++ {
		rng := rand.New(rand.NewSource(int64(3000 + seed)))
		n := 2 + seed%11
		workers := 1 + seed%6
		samples := 2 * (workers + rng.Intn(20)) // positive and even
		peaks := randomPeaks(n, rng)
		game := peakOf(peaks)

		got, err := MonteCarloAntitheticParallel(n, game, samples, int64(seed), workers)
		if err != nil {
			t.Fatal(err)
		}
		want, err := emulateSharded(n, samples, workers, 2, int64(seed),
			func(share int, rng *rand.Rand) ([]float64, error) {
				return MonteCarloAntithetic(n, game, share, rng)
			})
		if err != nil {
			t.Fatal(err)
		}
		equalSlices(t, got, want, "MonteCarloAntitheticParallel")
	}
}

func TestSampledOrderedParallelMatchesSerialShards(t *testing.T) {
	for seed := 0; seed < 60; seed++ {
		rng := rand.New(rand.NewSource(int64(4000 + seed)))
		n := 2 + seed%11
		workers := 1 + seed%6
		samples := workers + rng.Intn(40)
		peaks := randomPeaks(n, rng)
		// An ordered game with per-instance scratch state, as attribution
		// uses: marginal = how much the player raises the running peak.
		newMarginals := func() OrderedMarginals {
			cur := 0.0
			return func(perm []int, out []float64) {
				cur = 0
				for _, p := range perm {
					if peaks[p] > cur {
						out[p] = peaks[p] - cur
						cur = peaks[p]
					} else {
						out[p] = 0
					}
				}
			}
		}

		got, err := SampledOrderedParallel(n, newMarginals, samples, int64(seed), workers)
		if err != nil {
			t.Fatal(err)
		}
		want, err := emulateSharded(n, samples, workers, 1, int64(seed),
			func(share int, rng *rand.Rand) ([]float64, error) {
				return SampledOrdered(n, newMarginals(), share, rng)
			})
		if err != nil {
			t.Fatal(err)
		}
		equalSlices(t, got, want, "SampledOrderedParallel")
	}
}

// TestParallelSampledReproducible pins the determinism contract: a fixed
// (seed, workers) pair reproduces the estimate bit-for-bit.
func TestParallelSampledReproducible(t *testing.T) {
	peaks := randomPeaks(16, rand.New(rand.NewSource(99)))
	game := peakOf(peaks)
	for _, workers := range []int{1, 3, 8} {
		a, err := MonteCarloParallel(16, game, 500, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MonteCarloParallel(16, game, 500, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		equalSlices(t, a, b, "reproducibility")
	}
}

// TestMonteCarloParallelConvergesToExact is the statistical cross-check
// between the sharded estimator and the exact solver.
func TestMonteCarloParallelConvergesToExact(t *testing.T) {
	peaks := []float64{10, 4, 4, 7, 1, 0}
	n := len(peaks)
	exact, err := Exact(n, peakOf(peaks))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := MonteCarloParallel(n, peakOf(peaks), 20000, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	anti, err := MonteCarloAntitheticParallel(n, peakOf(peaks), 20000, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		approx(t, plain[i], exact[i], 0.1, "parallel MC estimate")
		approx(t, anti[i], exact[i], 0.1, "parallel antithetic estimate")
	}
}

// TestParallelWorkerResolution covers the knob edge cases: auto (<= 0),
// more workers than work, and single-worker runs.
func TestParallelWorkerResolution(t *testing.T) {
	peaks := randomPeaks(4, rand.New(rand.NewSource(7)))
	game := peakOf(peaks)
	serial, err := Exact(4, game)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 0, 1, 64} {
		got, err := ExactParallel(4, game, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		equalSlices(t, got, serial, "worker resolution")
	}
	// More workers than samples must clamp, not fail or starve.
	got, err := MonteCarloParallel(4, game, 3, 5, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, err := emulateSharded(4, 3, 16, 1, 5, func(share int, rng *rand.Rand) ([]float64, error) {
		return MonteCarlo(4, game, share, rng)
	})
	if err != nil {
		t.Fatal(err)
	}
	equalSlices(t, got, want, "worker clamping")
}

func TestWorkerSeeds(t *testing.T) {
	seeds := WorkerSeeds(1, 8)
	if len(seeds) != 8 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	seen := map[int64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate derived seed %d", s)
		}
		seen[s] = true
	}
	again := WorkerSeeds(1, 8)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatal("WorkerSeeds must be deterministic")
		}
	}
	// Prefix property: a shorter derivation is a prefix of a longer one, so
	// growing the worker count preserves earlier workers' streams.
	short := WorkerSeeds(1, 3)
	for i := range short {
		if short[i] != seeds[i] {
			t.Fatal("WorkerSeeds must be a prefix-stable stream")
		}
	}
	// Adjacent caller seeds must not produce overlapping worker seeds.
	other := WorkerSeeds(2, 8)
	for _, s := range other {
		if seen[s] {
			t.Fatalf("seed collision between adjacent caller seeds: %d", s)
		}
	}
	if WorkerSeeds(1, 0) != nil {
		t.Fatal("non-positive worker count must yield nil")
	}
}
