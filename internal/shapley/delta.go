package shapley

import (
	"math/bits"
	"time"

	"fairco2/internal/checkpoint"
)

// Incremental delta re-attribution over the dense coalition table. A
// DeltaTable wraps a built table plus one CRC-32 fingerprint per gray-code
// block (the same fixed block decomposition BuildTableIncrementalParallel
// and the checkpointed builder enumerate, so fingerprints are comparable
// across the whole engine). When a subset of players changes, only the
// coalitions containing a changed player can change value, so a delta
// apply re-evaluates exactly those masks:
//
//   - blocks whose fixed high bits contain a changed player are
//     re-enumerated in full, in the same gray-code order a fresh build
//     uses;
//   - blocks touched only through changed low bits re-walk the affected
//     subcubes: the masks with some changed low bit set partition by their
//     LOWEST set changed bit c_j into disjoint subcubes (c_j pinned 1,
//     lower changed bits pinned 0, every other low bit free), so for k
//     changed low bits the block re-evaluates 2^low - 2^(low-k) masks and
//     skips the rest.
//
// For a single changed player that is half the table — but evaluated
// through the incremental gray walk each re-evaluation costs O(update)
// instead of the O(|S| * update) a scratch SetFunc evaluation pays, which
// is where the order-of-magnitude delta speedup comes from.
//
// Determinism contract (mirrors the builders'): Apply re-evaluates pure
// per-mask values, so the table is bit-for-bit identical to a fresh
// BuildTableParallel of the changed game for any worker count.
// ApplyIncremental enumerates a worker-independent set of subcubes with
// caller-supplied incremental state, so it equals a fresh build exactly
// whenever the state's arithmetic is exact over add/remove (e.g.
// integer-valued demands — the Fair-CO2 coalition-peak game), and within
// FP rounding otherwise.
//
// A DeltaTable is not safe for concurrent use: applies mutate the table,
// the fingerprints and preallocated scratch. Steady-state applies perform
// no heap allocation when run serially (workers == 1) with a game that
// allocates none itself; the race_off AllocsPerRun tests pin this.

// DeltaStats reports what one delta apply did.
type DeltaStats struct {
	// BlocksRecomputed counts gray-code blocks that re-evaluated at least
	// one coalition; BlocksSkipped counts the untouched rest. They sum to
	// the table's block count.
	BlocksRecomputed int
	BlocksSkipped    int
	// BlocksChanged counts recomputed blocks whose fingerprint actually
	// moved — a recompute that lands on identical bits keeps its CRC.
	BlocksChanged int
	// Coalitions counts coalition values re-evaluated; a full rebuild
	// would have evaluated len(Table()) of them.
	Coalitions int
}

// DeltaTable is a dense coalition table that supports O(changed-blocks)
// re-evaluation when a subset of players changes.
type DeltaTable struct {
	n      int
	low    int // free low bits per block; blockLen = 1 << low
	blocks int
	table  []float64
	fps    []uint32 // per-block CRC-32 fingerprints

	// Preallocated scratch so steady-state applies stay allocation-free.
	lowAll   []int    // the identity free-bit list [0, low)
	subFixed []uint64 // per-subcube pinned-one bit (a changed low bit)
	subFree  []uint64 // per-subcube free-bit mask
	subLen   []int    // per-subcube free-bit count
	freeBits []int    // flat per-subcube free-bit lists, stride low
	wkRecomp []int64  // per-worker stat accumulators
	wkChang  []int64
	wkCoals  []int64
	crcBuf   []byte // encode buffer for serial fingerprint refreshes
}

// NewDeltaTable builds the coalition table with BuildTableParallel and
// wraps it for delta re-evaluation. v must be safe for concurrent use when
// workers != 1.
func NewDeltaTable(n int, v SetFunc, workers int) (*DeltaTable, error) {
	table, err := BuildTableParallel(n, v, workers)
	if err != nil {
		return nil, err
	}
	return newDeltaFromTable(n, table), nil
}

// NewDeltaTableIncremental builds the coalition table with
// BuildTableIncrementalParallel (caller-maintained incremental state, one
// fresh game per block) and wraps it for delta re-evaluation.
func NewDeltaTableIncremental(n int, newGame func() (add, remove func(player int), value func() float64), workers int) (*DeltaTable, error) {
	table, err := BuildTableIncrementalParallel(n, newGame, workers)
	if err != nil {
		return nil, err
	}
	return newDeltaFromTable(n, table), nil
}

// newDeltaFromTable wraps an already-validated table: n in [1,
// MaxExactPlayers], len(table) == 2^n.
func newDeltaFromTable(n int, table []float64) *DeltaTable {
	prefixBits := min(n, incrementalPrefixBits)
	low := n - prefixBits
	blocks := 1 << uint(prefixBits)
	t := &DeltaTable{
		n:        n,
		low:      low,
		blocks:   blocks,
		table:    table,
		fps:      make([]uint32, blocks),
		lowAll:   make([]int, low),
		subFixed: make([]uint64, low+1),
		subFree:  make([]uint64, low+1),
		subLen:   make([]int, low+1),
		freeBits: make([]int, low*low+1),
		wkRecomp: make([]int64, blocks),
		wkChang:  make([]int64, blocks),
		wkCoals:  make([]int64, blocks),
		crcBuf:   make([]byte, min(1<<uint(low), 8192)*8),
	}
	for i := range t.lowAll {
		t.lowAll[i] = i
	}
	blockLen := 1 << uint(low)
	for b := 0; b < blocks; b++ {
		t.fps[b] = checkpoint.Float64sCRCUpdateBuf(0, table[b*blockLen:(b+1)*blockLen], t.crcBuf)
	}
	return t
}

// N returns the player count.
func (t *DeltaTable) N() int { return t.n }

// Blocks returns the gray-code block count of the decomposition.
func (t *DeltaTable) Blocks() int { return t.blocks }

// Table returns the live coalition table, indexed by bitmask. Callers must
// treat it as read-only; it is re-used (not re-allocated) across applies.
func (t *DeltaTable) Table() []float64 { return t.table }

// BlockFingerprints returns the live per-block CRC-32 fingerprints
// (checkpoint.Float64sCRCUpdate over each block's Float64 bit patterns).
// Callers must treat the slice as read-only.
func (t *DeltaTable) BlockFingerprints() []uint32 { return t.fps }

// checkChanged validates a changed-player mask against the table (n is at
// most MaxExactPlayers, so the shift is always in range).
func (t *DeltaTable) checkChanged(changed uint64) error {
	if changed>>uint(t.n) != 0 {
		return ErrChangedPlayers
	}
	return nil
}

// Apply re-evaluates every coalition containing a changed player with the
// plain characteristic function v and refreshes the touched block
// fingerprints. The table afterwards is bit-for-bit what BuildTableParallel
// of v would build, for any worker count. v must be safe for concurrent use
// when workers != 1.
func (t *DeltaTable) Apply(changed uint64, v SetFunc, workers int) (DeltaStats, error) {
	if v == nil {
		return DeltaStats{}, ErrNilGame
	}
	if err := t.checkChanged(changed); err != nil {
		return DeltaStats{}, err
	}
	start := time.Now()
	if changed == 0 {
		stats := DeltaStats{BlocksSkipped: t.blocks}
		t.observe(stats)
		return stats, nil
	}
	subs := t.prepSubcubes(changed)
	workers = min(resolveWorkers(workers), t.blocks)
	highChanged := changed >> uint(t.low)
	var busy time.Duration
	var err error
	if workers == 1 {
		s := time.Now()
		t.applyPlainRange(0, t.blocks, 0, highChanged, subs, v, t.crcBuf)
		busy = time.Since(s)
	} else {
		busy, err = runWorkers(workers, func(w int) {
			blo, bhi := blockRange(t.blocks, workers, w)
			t.applyPlainRange(blo, bhi, w, highChanged, subs, v, make([]byte, len(t.crcBuf)))
		})
		if err != nil {
			t.gatherStats(workers) // reset the per-worker slots
			return DeltaStats{}, err
		}
	}
	stats := t.gatherStats(workers)
	t.observe(stats)
	observeParallel("delta-apply", workers, time.Since(start), busy)
	return stats, nil
}

// applyPlainRange runs the plain-SetFunc delta over blocks [blo, bhi),
// accumulating stats into worker slot w. crcBuf is the worker's private
// fingerprint encode buffer.
func (t *DeltaTable) applyPlainRange(blo, bhi, w int, highChanged uint64, subs int, v SetFunc, crcBuf []byte) {
	blockLen := 1 << uint(t.low)
	for b := blo; b < bhi; b++ {
		base := uint64(b) << uint(t.low)
		switch {
		case uint64(b)&highChanged != 0:
			// A changed player is pinned into every mask of the block:
			// re-evaluate it whole.
			for m := base; m < base+uint64(blockLen); m++ {
				t.table[m] = v(m)
			}
			t.wkCoals[w] += int64(blockLen)
		case subs > 0:
			// Only changed low bits touch this block: walk the affected
			// subcubes (all submasks of each free mask, any order — the
			// values are pure per-mask).
			for j := 0; j < subs; j++ {
				fixed := base | t.subFixed[j]
				free := t.subFree[j]
				for s := free; ; s = (s - 1) & free {
					m := fixed | s
					t.table[m] = v(m)
					t.wkCoals[w]++
					if s == 0 {
						break
					}
				}
			}
		default:
			continue // block untouched
		}
		t.refreshFingerprint(b, w, crcBuf)
	}
}

// ApplyIncremental re-evaluates every coalition containing a changed player
// through caller-maintained incremental state, like the incremental
// builders: newGame must return a fresh or reset (add, remove, value)
// triple describing the empty coalition. One game instance is used per
// worker and unwound back to empty between subcubes, so a factory that
// returns preallocated closures keeps the apply allocation-free. The
// subcube set does not depend on the worker count, so the result is
// deterministic for any parallelism (and bitwise-equal to a fresh build
// for games with exact add/remove arithmetic).
func (t *DeltaTable) ApplyIncremental(changed uint64, newGame func() (add, remove func(player int), value func() float64), workers int) (DeltaStats, error) {
	if newGame == nil {
		return DeltaStats{}, ErrNilGame
	}
	if err := t.checkChanged(changed); err != nil {
		return DeltaStats{}, err
	}
	start := time.Now()
	if changed == 0 {
		stats := DeltaStats{BlocksSkipped: t.blocks}
		t.observe(stats)
		return stats, nil
	}
	subs := t.prepSubcubes(changed)
	workers = min(resolveWorkers(workers), t.blocks)
	highChanged := changed >> uint(t.low)
	var busy time.Duration
	if workers == 1 {
		// Inlined (closure-free) so the steady-state serial apply stays
		// allocation-free.
		add, remove, value := newGame()
		if add == nil || remove == nil || value == nil {
			return DeltaStats{}, ErrNilGame
		}
		s := time.Now()
		t.applyIncrRange(0, t.blocks, 0, highChanged, subs, add, remove, value, t.crcBuf)
		busy = time.Since(s)
	} else {
		errs := make([]error, workers)
		busy_, panicErr := runWorkers(workers, func(w int) {
			add, remove, value := newGame()
			if add == nil || remove == nil || value == nil {
				errs[w] = ErrNilGame
				return
			}
			blo, bhi := blockRange(t.blocks, workers, w)
			t.applyIncrRange(blo, bhi, w, highChanged, subs, add, remove, value, make([]byte, len(t.crcBuf)))
		})
		if panicErr != nil {
			t.gatherStats(workers) // reset the per-worker slots
			return DeltaStats{}, panicErr
		}
		for _, e := range errs {
			if e != nil {
				t.gatherStats(workers)
				return DeltaStats{}, e
			}
		}
		busy = busy_
	}
	stats := t.gatherStats(workers)
	t.observe(stats)
	observeParallel("delta-apply-incremental", workers, time.Since(start), busy)
	return stats, nil
}

// applyIncrRange runs the incremental delta over blocks [blo, bhi) with one
// game's state, accumulating stats into worker slot w. crcBuf is the
// worker's private fingerprint encode buffer.
func (t *DeltaTable) applyIncrRange(blo, bhi, w int, highChanged uint64, subs int, add, remove func(int), value func() float64, crcBuf []byte) {
	blockLen := 1 << uint(t.low)
	for b := blo; b < bhi; b++ {
		base := uint64(b) << uint(t.low)
		switch {
		case uint64(b)&highChanged != 0:
			// Re-enumerate the whole block in the fresh builders' order.
			t.walkSubcube(base, t.lowAll, add, remove, value)
			t.wkCoals[w] += int64(blockLen)
		case subs > 0:
			for j := 0; j < subs; j++ {
				fb := t.freeBits[j*t.low : j*t.low+t.subLen[j]]
				t.walkSubcube(base|t.subFixed[j], fb, add, remove, value)
				t.wkCoals[w] += int64(1) << uint(len(fb))
			}
		default:
			continue
		}
		t.refreshFingerprint(b, w, crcBuf)
	}
}

// walkSubcube fills table entries for the subcube {fixed | S : S subset of
// freeBits}: the fixed players join once, then the free players walk in
// gray-code order so each step toggles exactly one player (gray(j) and
// gray(j+1) differ in free bit TrailingZeros(j+1), exactly like
// enumerateBlock). The state is unwound to the empty coalition before
// returning, so one game instance can walk many subcubes.
func (t *DeltaTable) walkSubcube(fixed uint64, freeBits []int, add, remove func(int), value func() float64) {
	for rest := fixed; rest != 0; rest &= rest - 1 {
		add(bits.TrailingZeros64(rest))
	}
	t.table[fixed] = value()
	gray := uint64(0)
	for j := uint64(1); j < uint64(1)<<uint(len(freeBits)); j++ {
		p := freeBits[bits.TrailingZeros64(j)]
		bit := uint64(1) << uint(p)
		if gray&bit == 0 {
			add(p)
		} else {
			remove(p)
		}
		gray ^= bit
		t.table[fixed|gray] = value()
	}
	for rest := fixed | gray; rest != 0; rest &= rest - 1 {
		remove(bits.TrailingZeros64(rest))
	}
}

// prepSubcubes decomposes the changed low bits into disjoint subcubes (one
// per changed low bit, keyed by the lowest changed bit a mask contains)
// into the preallocated scratch, returning the subcube count. With no
// changed low bits there are no subcubes and only high-changed blocks
// recompute.
func (t *DeltaTable) prepSubcubes(changed uint64) int {
	lowMask := uint64(1)<<uint(t.low) - 1
	lowChanged := changed & lowMask
	count := 0
	upto := uint64(0) // changed bits at or below the current one
	for rest := lowChanged; rest != 0; rest &= rest - 1 {
		c := bits.TrailingZeros64(rest)
		upto |= uint64(1) << uint(c)
		free := lowMask &^ upto
		t.subFixed[count] = uint64(1) << uint(c)
		t.subFree[count] = free
		ln := 0
		for f := free; f != 0; f &= f - 1 {
			t.freeBits[count*t.low+ln] = bits.TrailingZeros64(f)
			ln++
		}
		t.subLen[count] = ln
		count++
	}
	return count
}

// refreshFingerprint recomputes block b's CRC and counts a recompute (and
// a change, if the bits moved) into worker slot w, encoding through the
// worker's private crcBuf.
func (t *DeltaTable) refreshFingerprint(b, w int, crcBuf []byte) {
	blockLen := 1 << uint(t.low)
	nf := checkpoint.Float64sCRCUpdateBuf(0, t.table[b*blockLen:(b+1)*blockLen], crcBuf)
	t.wkRecomp[w]++
	if nf != t.fps[b] {
		t.fps[b] = nf
		t.wkChang[w]++
	}
}

// gatherStats sums and resets the per-worker accumulators.
func (t *DeltaTable) gatherStats(workers int) DeltaStats {
	var stats DeltaStats
	for w := 0; w < workers; w++ {
		stats.BlocksRecomputed += int(t.wkRecomp[w])
		stats.BlocksChanged += int(t.wkChang[w])
		stats.Coalitions += int(t.wkCoals[w])
		t.wkRecomp[w], t.wkChang[w], t.wkCoals[w] = 0, 0, 0
	}
	stats.BlocksSkipped = t.blocks - stats.BlocksRecomputed
	return stats
}

// observe records one delta apply on the package metrics.
func (t *DeltaTable) observe(stats DeltaStats) {
	metricDeltaApplies.Inc()
	metricDeltaBlocksRecomputed.Add(float64(stats.BlocksRecomputed))
	metricDeltaBlocksSkipped.Add(float64(stats.BlocksSkipped))
	if stats.Coalitions > 0 {
		metricDeltaSpeedup.Set(float64(len(t.table)) / float64(stats.Coalitions))
	}
	metricExactCoalitions.Add(float64(stats.Coalitions))
}
