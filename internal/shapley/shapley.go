// Package shapley implements the cooperative-game machinery at the heart of
// Fair-CO2 (§4): exact Shapley values by coalition enumeration, Monte Carlo
// permutation sampling for large games, ordered (arrival-order) games for
// colocation attribution, and the closed-form solution for peak/max games
// that makes Temporal Shapley polynomial (§5.1, Eq. 7 — which reduces to
// the classic airport-game formula).
package shapley

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
)

// MaxExactPlayers bounds exact coalition enumeration: the table of
// characteristic-function values has 2^n entries (8 bytes each), so 24
// players already costs 128 MiB and O(2^n * n) time. The paper caps its
// ground-truth runs at 22 workloads for the same reason.
const MaxExactPlayers = 24

// SetFunc is a characteristic function over coalitions encoded as bitmasks:
// bit i set means player i is in the coalition. SetFunc(0) is the value of
// the empty coalition.
type SetFunc func(mask uint64) float64

// Exact computes the exact Shapley value of every player by enumerating all
// 2^n coalitions. v is called exactly once per coalition.
func Exact(n int, v SetFunc) ([]float64, error) {
	table, err := BuildTable(n, v)
	if err != nil {
		return nil, err
	}
	return ExactFromTable(n, table)
}

// BuildTable evaluates v over all 2^n coalitions into a dense table indexed
// by bitmask.
func BuildTable(n int, v SetFunc) ([]float64, error) {
	if err := checkExactN(n); err != nil {
		return nil, err
	}
	if v == nil {
		return nil, ErrNilGame
	}
	table := make([]float64, 1<<uint(n))
	for mask := range table {
		table[mask] = v(uint64(mask))
	}
	metricExactCoalitions.Add(float64(len(table)))
	return table, nil
}

// BuildTableIncremental evaluates a characteristic function over all 2^n
// coalitions while letting the caller maintain incremental state: add(i) is
// called when player i joins the working coalition, remove(i) when it
// leaves, and value() must return the value of the current coalition.
// Each coalition is visited exactly once (depth-first over players), so a
// caller whose value is expensive to compute from scratch — e.g. the peak
// of a summed demand curve — pays only O(update) per coalition.
func BuildTableIncremental(n int, add, remove func(player int), value func() float64) ([]float64, error) {
	if err := checkExactN(n); err != nil {
		return nil, err
	}
	if add == nil || remove == nil || value == nil {
		return nil, ErrNilGame
	}
	table := make([]float64, 1<<uint(n))
	var rec func(next int, mask uint64)
	rec = func(next int, mask uint64) {
		if next == n {
			table[mask] = value()
			return
		}
		rec(next+1, mask)
		add(next)
		rec(next+1, mask|1<<uint(next))
		remove(next)
	}
	rec(0, 0)
	metricExactCoalitions.Add(float64(len(table)))
	return table, nil
}

// ExactFromTable computes exact Shapley values from a dense table of
// coalition values indexed by bitmask (len(table) must be 2^n).
//
//	phi_i = sum over S not containing i of
//	        |S|! (n-|S|-1)! / n!  *  (v(S u {i}) - v(S))
func ExactFromTable(n int, table []float64) ([]float64, error) {
	if err := checkExactN(n); err != nil {
		return nil, err
	}
	phi := make([]float64, n)
	w := make([]float64, n)
	if err := ExactFromTableInto(n, table, phi, w); err != nil {
		return nil, err
	}
	return phi, nil
}

// ExactFromTableInto is ExactFromTable writing into caller-provided scratch:
// phi (length n) receives the Shapley values, w (length n) holds the
// coalition-size weights. It performs no heap allocation, accumulates in
// exactly ExactFromTable's order (so results are bit-for-bit identical),
// and exists for hot re-attribution loops that price a delta-updated table
// on every request.
func ExactFromTableInto(n int, table, phi, w []float64) error {
	if err := checkExactN(n); err != nil {
		return err
	}
	if len(table) != 1<<uint(n) {
		return fmt.Errorf("shapley: table has %d entries, want 2^%d: %w", len(table), n, ErrTableSize)
	}
	if len(phi) != n || len(w) != n {
		return fmt.Errorf("shapley: phi/weight scratch of %d/%d entries, want %d: %w", len(phi), len(w), n, ErrScratchSize)
	}
	// w[s] = s!(n-s-1)!/n! = 1 / (n * C(n-1, s)).
	for s := 0; s < n; s++ {
		w[s] = 1 / (float64(n) * binomial(n-1, s))
	}
	for i := range phi {
		phi[i] = 0
	}
	for mask := uint64(0); mask < uint64(len(table)); mask++ {
		rest := ^mask & (1<<uint(n) - 1)
		if rest == 0 {
			continue // full coalition: no player left to add
		}
		vs := table[mask]
		weight := w[bits.OnesCount64(mask)]
		for rest != 0 {
			bit := rest & -rest
			i := bits.TrailingZeros64(bit)
			phi[i] += weight * (table[mask|bit] - vs)
			rest ^= bit
		}
	}
	return nil
}

// MonteCarlo estimates Shapley values by sampling random permutations and
// averaging marginal contributions along each arrival order. The estimator
// is unbiased and efficient (marginals along one permutation telescope to
// v(N) - v(empty)).
func MonteCarlo(n int, v SetFunc, samples int, rng *rand.Rand) ([]float64, error) {
	if err := checkSampling(n, samples); err != nil {
		return nil, err
	}
	if v == nil {
		return nil, ErrNilGame
	}
	if rng == nil {
		return nil, ErrNilRNG
	}
	metricSamples.With("monte-carlo").Add(float64(samples))
	phi := make([]float64, n)
	perm := make([]int, n)
	for s := 0; s < samples; s++ {
		identityPerm(perm)
		shuffle(perm, rng)
		mask := uint64(0)
		prev := v(0)
		for _, p := range perm {
			mask |= 1 << uint(p)
			cur := v(mask)
			phi[p] += cur - prev
			prev = cur
		}
	}
	inv := 1 / float64(samples)
	for i := range phi {
		phi[i] *= inv
	}
	return phi, nil
}

func identityPerm(perm []int) {
	for i := range perm {
		perm[i] = i
	}
}

func shuffle(perm []int, rng *rand.Rand) {
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
}

func checkExactN(n int) error {
	if n < 1 {
		return ErrNoPlayers
	}
	if n > MaxExactPlayers {
		return fmt.Errorf("shapley: exact enumeration limited to %d players (got %d), use MonteCarlo: %w", MaxExactPlayers, n, ErrTooManyExactPlayers)
	}
	return nil
}

// binomial returns C(n, k) as a float64.
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// PeakGame returns the exact Shapley values of the peak (max) game
// v(S) = max_{i in S} peaks[i] with non-negative peaks, in O(n log n).
// This is Eq. (7) of the paper in its classic airport-game form
// (Littlechild & Owen): sorting the peaks ascending c_1 <= ... <= c_n,
//
//	phi_(k) = sum_{j=1..k} (c_j - c_{j-1}) / (n - j + 1),   c_0 = 0.
//
// Each increment of peak height is shared equally by every player tall
// enough to need it.
func PeakGame(peaks []float64) ([]float64, error) {
	n := len(peaks)
	if n == 0 {
		return nil, ErrNoPlayers
	}
	phi := make([]float64, n)
	idx := make([]int, n)
	if err := PeakGameInto(peaks, phi, idx); err != nil {
		return nil, err
	}
	return phi, nil
}

// insertionSortMax bounds the player count PeakGameInto sorts with its
// allocation-free insertion sort; larger games fall back to sort.Slice
// (which allocates its closure but keeps the O(n log n) bound).
const insertionSortMax = 64

// PeakGameInto is PeakGame writing into caller-provided scratch: phi
// (length n) receives the values, idx (length n) is ordering scratch. For
// n <= 64 players it performs no heap allocation. The result is bit-for-bit
// identical to PeakGame's even though the sorts order ties differently:
// tied peaks contribute zero-height increments to the running accumulator,
// so every ascending order yields the same phi.
func PeakGameInto(peaks, phi []float64, idx []int) error {
	n := len(peaks)
	if n == 0 {
		return ErrNoPlayers
	}
	if len(phi) != n || len(idx) != n {
		return fmt.Errorf("shapley: phi/index scratch of %d/%d entries, want %d: %w", len(phi), len(idx), n, ErrScratchSize)
	}
	for i := range idx {
		idx[i] = i
	}
	for i, p := range peaks {
		if p < 0 {
			return fmt.Errorf("shapley: peak game requires non-negative peaks, player %d has %v", i, p)
		}
	}
	if n <= insertionSortMax {
		for i := 1; i < n; i++ {
			for j := i; j > 0 && peaks[idx[j]] < peaks[idx[j-1]]; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
	} else {
		sort.Slice(idx, func(a, b int) bool { return peaks[idx[a]] < peaks[idx[b]] })
	}

	acc := 0.0
	prev := 0.0
	for rank, i := range idx {
		c := peaks[i]
		acc += (c - prev) / float64(n-rank)
		phi[i] = acc
		prev = c
	}
	return nil
}

// PeakGameNaive computes the peak-game Shapley value via full coalition
// enumeration. It exists as the ablation baseline for PeakGame (the paper's
// 2^M formulation in Eq. 4 versus the closed form in Eq. 7) and as a test
// oracle; production code should always use PeakGame.
func PeakGameNaive(peaks []float64) ([]float64, error) {
	n := len(peaks)
	for i, p := range peaks {
		if p < 0 {
			return nil, fmt.Errorf("shapley: peak game requires non-negative peaks, player %d has %v", i, p)
		}
	}
	return Exact(n, func(mask uint64) float64 {
		peak := 0.0
		for mask != 0 {
			bit := mask & -mask
			if p := peaks[bits.TrailingZeros64(bit)]; p > peak {
				peak = p
			}
			mask ^= bit
		}
		return peak
	})
}
