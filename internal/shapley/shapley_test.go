package shapley

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

// additiveGame: v(S) = sum of weights — Shapley must return the weights.
func additiveGame(weights []float64) SetFunc {
	return func(mask uint64) float64 {
		sum := 0.0
		for mask != 0 {
			bit := mask & -mask
			sum += weights[bits.TrailingZeros64(bit)]
			mask ^= bit
		}
		return sum
	}
}

func peakOf(peaks []float64) SetFunc {
	return func(mask uint64) float64 {
		peak := 0.0
		for mask != 0 {
			bit := mask & -mask
			if p := peaks[bits.TrailingZeros64(bit)]; p > peak {
				peak = p
			}
			mask ^= bit
		}
		return peak
	}
}

func TestExactAdditiveGame(t *testing.T) {
	weights := []float64{1, 2.5, 0, 7}
	phi, err := Exact(len(weights), additiveGame(weights))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range weights {
		approx(t, phi[i], w, 1e-12, "additive game Shapley equals weight")
	}
}

func TestExactGloveGame(t *testing.T) {
	// Classic 3-player glove game: players 0,1 hold left gloves, player 2
	// a right glove; a pair is worth 1. Known solution: (1/6, 1/6, 2/3).
	v := func(mask uint64) float64 {
		left := mask&0b011 != 0
		right := mask&0b100 != 0
		if left && right {
			return 1
		}
		return 0
	}
	phi, err := Exact(3, v)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, phi[0], 1.0/6, 1e-12, "left glove 0")
	approx(t, phi[1], 1.0/6, 1e-12, "left glove 1")
	approx(t, phi[2], 2.0/3, 1e-12, "right glove")
}

func TestExactEfficiencyAxiom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		table := make([]float64, 1<<uint(n))
		for i := 1; i < len(table); i++ {
			table[i] = rng.Float64() * 100
		}
		phi, err := ExactFromTable(n, table)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range phi {
			sum += p
		}
		approx(t, sum, table[len(table)-1]-table[0], 1e-9, "efficiency")
	}
}

func TestExactSymmetryAxiom(t *testing.T) {
	// Players 0 and 1 are interchangeable in this game.
	v := func(mask uint64) float64 {
		k := bits.OnesCount64(mask & 0b011)
		extra := 0.0
		if mask&0b100 != 0 {
			extra = 5
		}
		return float64(k*k) + extra
	}
	phi, err := Exact(3, v)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, phi[0], phi[1], 1e-12, "symmetric players equal")
}

func TestExactNullPlayerAxiom(t *testing.T) {
	// Player 2 never changes the value.
	v := func(mask uint64) float64 { return float64(bits.OnesCount64(mask & 0b011)) }
	phi, err := Exact(3, v)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, phi[2], 0, 1e-12, "null player")
}

func TestExactLinearityAxiom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 6
	ta := make([]float64, 1<<uint(n))
	tb := make([]float64, 1<<uint(n))
	tc := make([]float64, 1<<uint(n))
	for i := 1; i < len(ta); i++ {
		ta[i] = rng.Float64()
		tb[i] = rng.Float64()
		tc[i] = 2*ta[i] + 3*tb[i]
	}
	pa, _ := ExactFromTable(n, ta)
	pb, _ := ExactFromTable(n, tb)
	pc, err := ExactFromTable(n, tc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		approx(t, pc[i], 2*pa[i]+3*pb[i], 1e-9, "linearity")
	}
}

func TestExactErrors(t *testing.T) {
	if _, err := Exact(0, nil); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := Exact(MaxExactPlayers+1, func(uint64) float64 { return 0 }); err == nil {
		t.Error("expected error above MaxExactPlayers")
	}
	if _, err := ExactFromTable(3, make([]float64, 7)); err == nil {
		t.Error("expected error for wrong table size")
	}
}

func TestBuildTableIncrementalMatchesDirect(t *testing.T) {
	peaks := []float64{4, 1, 9, 2, 9}
	n := len(peaks)
	direct, err := BuildTable(n, peakOf(peaks))
	if err != nil {
		t.Fatal(err)
	}
	// Incremental state: multiset of member peaks via counting.
	counts := map[float64]int{}
	inc, err := BuildTableIncremental(n,
		func(i int) { counts[peaks[i]]++ },
		func(i int) { counts[peaks[i]]-- },
		func() float64 {
			m := 0.0
			for p, c := range counts {
				if c > 0 && p > m {
					m = p
				}
			}
			return m
		})
	if err != nil {
		t.Fatal(err)
	}
	for mask := range direct {
		if direct[mask] != inc[mask] {
			t.Fatalf("mask %b: direct %v != incremental %v", mask, direct[mask], inc[mask])
		}
	}
}

func TestBuildTableIncrementalErrors(t *testing.T) {
	if _, err := BuildTableIncremental(0, nil, nil, nil); err == nil {
		t.Error("expected error for n=0")
	}
}

func TestMonteCarloConvergesToExact(t *testing.T) {
	peaks := []float64{10, 4, 4, 7, 1, 0}
	n := len(peaks)
	exact, err := Exact(n, peakOf(peaks))
	if err != nil {
		t.Fatal(err)
	}
	est, err := MonteCarlo(n, peakOf(peaks), 20000, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		approx(t, est[i], exact[i], 0.1, "MC estimate")
	}
}

func TestMonteCarloEfficiencyExactPerSample(t *testing.T) {
	// Marginals telescope, so even a single sample is efficient.
	peaks := []float64{3, 8, 2}
	est, err := MonteCarlo(3, peakOf(peaks), 1, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	sum := est[0] + est[1] + est[2]
	approx(t, sum, 8, 1e-12, "single-sample efficiency")
}

func TestMonteCarloErrors(t *testing.T) {
	ok := func(uint64) float64 { return 0 }
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarlo(0, ok, 1, rng); err == nil {
		t.Error("n=0")
	}
	if _, err := MonteCarlo(64, ok, 1, rng); err == nil {
		t.Error("n=64")
	}
	if _, err := MonteCarlo(2, ok, 0, rng); err == nil {
		t.Error("samples=0")
	}
	if _, err := MonteCarlo(2, ok, 1, nil); err == nil {
		t.Error("nil rng")
	}
}

func TestPeakGameMatchesExact(t *testing.T) {
	cases := [][]float64{
		{5},
		{5, 5},
		{0, 3},
		{1, 2, 3, 4},
		{10, 10, 10},
		{7, 0, 0, 7, 3},
		{0.5, 2.25, 2.25, 9, 1e-9, 0},
	}
	for _, peaks := range cases {
		closed, err := PeakGame(peaks)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := PeakGameNaive(peaks)
		if err != nil {
			t.Fatal(err)
		}
		for i := range peaks {
			approx(t, closed[i], naive[i], 1e-9, "closed form vs enumeration")
		}
	}
}

func TestPeakGameProperty(t *testing.T) {
	// For random non-negative peak vectors up to 8 players, the closed
	// form must match exact enumeration and satisfy efficiency.
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		peaks := make([]float64, len(raw))
		maxPeak := 0.0
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			peaks[i] = math.Mod(math.Abs(v), 1000)
			if peaks[i] > maxPeak {
				maxPeak = peaks[i]
			}
		}
		closed, err := PeakGame(peaks)
		if err != nil {
			return false
		}
		naive, err := PeakGameNaive(peaks)
		if err != nil {
			return false
		}
		sum := 0.0
		for i := range peaks {
			if math.Abs(closed[i]-naive[i]) > 1e-6*(1+maxPeak) {
				return false
			}
			sum += closed[i]
		}
		return math.Abs(sum-maxPeak) <= 1e-6*(1+maxPeak)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPeakGameKnownValues(t *testing.T) {
	// Airport game with peaks 1,2,3: phi = (1/3, 1/3+1/2, 1/3+1/2+1).
	phi, err := PeakGame([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, phi[0], 1.0/3, 1e-12, "phi0")
	approx(t, phi[1], 1.0/3+1.0/2, 1e-12, "phi1")
	approx(t, phi[2], 1.0/3+1.0/2+1, 1e-12, "phi2")
}

func TestPeakGameErrors(t *testing.T) {
	if _, err := PeakGame(nil); err == nil {
		t.Error("empty game")
	}
	if _, err := PeakGame([]float64{1, -2}); err == nil {
		t.Error("negative peak")
	}
	if _, err := PeakGameNaive([]float64{-1}); err == nil {
		t.Error("negative peak naive")
	}
}

func TestPeakGameMonotoneInPeak(t *testing.T) {
	// A player with a higher peak never receives less.
	phi, err := PeakGame([]float64{2, 5, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !(phi[0] < phi[1] && phi[1] == phi[2] && phi[2] < phi[3]) {
		t.Errorf("monotonicity violated: %v", phi)
	}
}
