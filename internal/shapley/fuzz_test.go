package shapley

import (
	"math"
	"testing"
)

// Fuzz targets for the exact solvers. The invariants checked are the ones
// every downstream attribution depends on: no panics on arbitrary input,
// efficiency (the Shapley values sum to v(grand) - v(empty)), and the
// closed-form peak-game solver agreeing with full coalition enumeration.

// tableFromBytes decodes a fuzzer byte string into a coalition table for an
// n-player game. Bytes map to small non-negative floats (b/4, so quarters
// exercise non-integer arithmetic); missing bytes extend with zero. The
// empty coalition is pinned to value 0 so efficiency reduces to
// sum(phi) == v(grand).
func tableFromBytes(n int, data []byte) []float64 {
	table := make([]float64, 1<<uint(n))
	for i := 1; i < len(table); i++ {
		if i-1 < len(data) {
			table[i] = float64(data[i-1]) / 4
		}
	}
	return table
}

func FuzzExactFromTable(f *testing.F) {
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5, 6, 7})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(12), []byte{255, 0, 128, 9})
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := int(nRaw)%12 + 1
		table := tableFromBytes(n, data)
		phi, err := ExactFromTable(n, table)
		if err != nil {
			t.Fatalf("valid table rejected: %v", err)
		}
		sum := 0.0
		for _, p := range phi {
			sum += p
		}
		grand := table[len(table)-1]
		if math.Abs(sum-grand) > 1e-9*(1+math.Abs(grand)) {
			t.Fatalf("efficiency violated: sum(phi)=%v, v(grand)=%v", sum, grand)
		}
		// The parallel solver must agree bit-for-bit on anything the fuzzer
		// finds, with any worker count.
		par, err := ExactFromTableParallel(n, table, int(nRaw)%5+1)
		if err != nil {
			t.Fatalf("parallel solver rejected valid table: %v", err)
		}
		for i := range phi {
			if par[i] != phi[i] {
				t.Fatalf("player %d: parallel %v != serial %v", i, par[i], phi[i])
			}
		}
	})
}

func FuzzPeakGame(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 0, 7, 7, 7, 9, 200, 31, 4, 4, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 12 {
			return
		}
		peaks := make([]float64, len(data))
		maxPeak := 0.0
		for i, b := range data {
			peaks[i] = float64(b) / 4
			if peaks[i] > maxPeak {
				maxPeak = peaks[i]
			}
		}
		closed, err := PeakGame(peaks)
		if err != nil {
			t.Fatalf("non-negative peaks rejected: %v", err)
		}
		naive, err := PeakGameNaive(peaks)
		if err != nil {
			t.Fatalf("naive solver rejected: %v", err)
		}
		sum := 0.0
		for i := range peaks {
			if math.Abs(closed[i]-naive[i]) > 1e-9*(1+maxPeak) {
				t.Fatalf("player %d: closed form %v != naive %v", i, closed[i], naive[i])
			}
			if closed[i] < 0 {
				t.Fatalf("player %d: negative share %v", i, closed[i])
			}
			sum += closed[i]
		}
		if math.Abs(sum-maxPeak) > 1e-9*(1+maxPeak) {
			t.Fatalf("efficiency violated: sum(phi)=%v, peak=%v", sum, maxPeak)
		}
	})
}
