package shapley

import (
	"math"
	"math/bits"
	"testing"
)

// Fuzz targets for the exact solvers. The invariants checked are the ones
// every downstream attribution depends on: no panics on arbitrary input,
// efficiency (the Shapley values sum to v(grand) - v(empty)), and the
// closed-form peak-game solver agreeing with full coalition enumeration.

// tableFromBytes decodes a fuzzer byte string into a coalition table for an
// n-player game. Bytes map to small non-negative floats (b/4, so quarters
// exercise non-integer arithmetic); missing bytes extend with zero. The
// empty coalition is pinned to value 0 so efficiency reduces to
// sum(phi) == v(grand).
func tableFromBytes(n int, data []byte) []float64 {
	table := make([]float64, 1<<uint(n))
	for i := 1; i < len(table); i++ {
		if i-1 < len(data) {
			table[i] = float64(data[i-1]) / 4
		}
	}
	return table
}

func FuzzExactFromTable(f *testing.F) {
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5, 6, 7})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(12), []byte{255, 0, 128, 9})
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := int(nRaw)%12 + 1
		table := tableFromBytes(n, data)
		phi, err := ExactFromTable(n, table)
		if err != nil {
			t.Fatalf("valid table rejected: %v", err)
		}
		sum := 0.0
		for _, p := range phi {
			sum += p
		}
		grand := table[len(table)-1]
		if math.Abs(sum-grand) > 1e-9*(1+math.Abs(grand)) {
			t.Fatalf("efficiency violated: sum(phi)=%v, v(grand)=%v", sum, grand)
		}
		// The parallel solver must agree bit-for-bit on anything the fuzzer
		// finds, with any worker count.
		par, err := ExactFromTableParallel(n, table, int(nRaw)%5+1)
		if err != nil {
			t.Fatalf("parallel solver rejected valid table: %v", err)
		}
		for i := range phi {
			if par[i] != phi[i] {
				t.Fatalf("player %d: parallel %v != serial %v", i, par[i], phi[i])
			}
		}
	})
}

// FuzzDeltaTable drives a DeltaTable through a fuzzer-chosen game and
// perturbation chain and demands the invariant the whole delta engine rests
// on: after every apply, the wrapped table is Float64bits-identical to a
// fresh BuildTableParallel of the current game, with the re-evaluated
// coalition count exactly 2^n - 2^(n-k) for k changed players.
func FuzzDeltaTable(f *testing.F) {
	f.Add(uint8(4), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint8(1), []byte{0})
	f.Add(uint8(9), []byte{7, 7, 7, 0, 255, 3, 1, 128, 64, 32, 5, 17, 200, 9})
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := int(nRaw)%9 + 1
		const slices = 3
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		// Integer-valued demands keep the incremental add/remove arithmetic
		// exact, so bitwise equality to a fresh build is the contract (the
		// same reason the attribution demand-peak game qualifies).
		g := &deltaGame{slices: slices, vecs: make([][]float64, n)}
		for i := range g.vecs {
			vec := make([]float64, slices)
			for s := range vec {
				vec[s] = float64(next() % 8)
			}
			g.vecs[i] = vec
		}
		dt, err := NewDeltaTableIncremental(n, g.factory(), int(nRaw)%3+1)
		if err != nil {
			t.Fatalf("build rejected valid game: %v", err)
		}
		for step := 0; step < 4; step++ {
			changed := uint64(next()) & (uint64(1)<<uint(n) - 1)
			for rest := changed; rest != 0; rest &= rest - 1 {
				vec := g.vecs[bits.TrailingZeros64(rest)]
				for s := range vec {
					vec[s] = float64(next() % 8)
				}
			}
			workers := int(next())%3 + 1
			var stats DeltaStats
			if step%2 == 0 {
				stats, err = dt.ApplyIncremental(changed, g.factory(), workers)
			} else {
				stats, err = dt.Apply(changed, g.plain(), workers)
			}
			if err != nil {
				t.Fatalf("step %d: apply: %v", step, err)
			}
			k := bits.OnesCount64(changed)
			if want := 1<<uint(n) - 1<<uint(n-k); stats.Coalitions != want {
				t.Fatalf("step %d: %d coalitions re-evaluated, want %d (n=%d, k=%d)",
					step, stats.Coalitions, want, n, k)
			}
			scratch, err := BuildTableParallel(n, g.plain(), workers)
			if err != nil {
				t.Fatalf("step %d: scratch: %v", step, err)
			}
			for m := range scratch {
				if math.Float64bits(dt.Table()[m]) != math.Float64bits(scratch[m]) {
					t.Fatalf("step %d: mask %#x: delta %v != scratch %v",
						step, m, dt.Table()[m], scratch[m])
				}
			}
		}
	})
}

func FuzzPeakGame(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 0, 7, 7, 7, 9, 200, 31, 4, 4, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 12 {
			return
		}
		peaks := make([]float64, len(data))
		maxPeak := 0.0
		for i, b := range data {
			peaks[i] = float64(b) / 4
			if peaks[i] > maxPeak {
				maxPeak = peaks[i]
			}
		}
		closed, err := PeakGame(peaks)
		if err != nil {
			t.Fatalf("non-negative peaks rejected: %v", err)
		}
		naive, err := PeakGameNaive(peaks)
		if err != nil {
			t.Fatalf("naive solver rejected: %v", err)
		}
		sum := 0.0
		for i := range peaks {
			if math.Abs(closed[i]-naive[i]) > 1e-9*(1+maxPeak) {
				t.Fatalf("player %d: closed form %v != naive %v", i, closed[i], naive[i])
			}
			if closed[i] < 0 {
				t.Fatalf("player %d: negative share %v", i, closed[i])
			}
			sum += closed[i]
		}
		if math.Abs(sum-maxPeak) > 1e-9*(1+maxPeak) {
			t.Fatalf("efficiency violated: sum(phi)=%v, peak=%v", sum, maxPeak)
		}
	})
}
