package shapley

import (
	"context"
	"errors"
	"strings"
	"testing"

	"fairco2/internal/checkpoint"
)

// TestWorkerPanicIsolation pins the panic-isolation contract of the parallel
// engine: a panic inside a caller-supplied game function must not crash the
// process or deadlock the pool — every entry point returns a typed
// *WorkerPanicError (matchable as ErrWorkerPanic) carrying the panic value
// and the goroutine stack.
func TestWorkerPanicIsolation(t *testing.T) {
	panicGame := func(uint64) float64 { panic("game exploded") }
	newPanicGame := func() (func(int), func(int), func() float64) {
		noop := func(int) {}
		return noop, noop, func() float64 { panic("game exploded") }
	}
	newPanicMarginals := func() OrderedMarginals {
		return func(perm []int, out []float64) { panic("game exploded") }
	}

	for _, workers := range []int{1, 4} {
		cases := []struct {
			name string
			call func() ([]float64, error)
		}{
			{"BuildTableParallel", func() ([]float64, error) { return BuildTableParallel(6, panicGame, workers) }},
			{"BuildTableIncrementalParallel", func() ([]float64, error) {
				return BuildTableIncrementalParallel(6, newPanicGame, workers)
			}},
			{"ExactParallel", func() ([]float64, error) { return ExactParallel(6, panicGame, workers) }},
			{"MonteCarloParallel", func() ([]float64, error) { return MonteCarloParallel(6, panicGame, 64, 1, workers) }},
			{"MonteCarloAntitheticParallel", func() ([]float64, error) {
				return MonteCarloAntitheticParallel(6, panicGame, 64, 1, workers)
			}},
			{"SampledOrderedParallel", func() ([]float64, error) {
				return SampledOrderedParallel(6, newPanicMarginals, 64, 1, workers)
			}},
			{"BuildTableIncrementalCheckpointed", func() ([]float64, error) {
				return BuildTableIncrementalCheckpointed(context.Background(), 6, newPanicGame, workers,
					checkpoint.Spec{Dir: t.TempDir(), Every: 1})
			}},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				out, err := tc.call()
				if out != nil {
					t.Errorf("expected nil result, got %d values", len(out))
				}
				if !errors.Is(err, ErrWorkerPanic) {
					t.Fatalf("got %v, want ErrWorkerPanic", err)
				}
				var wp *WorkerPanicError
				if !errors.As(err, &wp) {
					t.Fatalf("error %v does not unwrap to *WorkerPanicError", err)
				}
				if wp.Value != "game exploded" {
					t.Errorf("panic value %v", wp.Value)
				}
				if len(wp.Stack) == 0 {
					t.Error("empty panic stack")
				}
				if !strings.Contains(err.Error(), "game exploded") {
					t.Errorf("message %q omits the panic value", err.Error())
				}
			})
		}
	}
}

// A panic mid-sweep must not poison a later, correct run on the same pool
// entry points (no shared state survives a panic).
func TestWorkerPanicDoesNotPoisonNextRun(t *testing.T) {
	calls := 0
	flaky := func(mask uint64) float64 {
		calls++
		if calls == 1 {
			panic("first call explodes")
		}
		return float64(mask)
	}
	if _, err := BuildTableParallel(4, flaky, 1); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("first run: %v", err)
	}
	good := func(mask uint64) float64 { return float64(mask) }
	if _, err := BuildTableParallel(4, good, 2); err != nil {
		t.Fatalf("second run: %v", err)
	}
}
