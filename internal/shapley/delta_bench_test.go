package shapley

import (
	"math/rand"
	"testing"
)

// Pinned benchmarks for the delta engine, consumed by the CI
// bench-regression gate (scripts/benchguard.go): a single-player change at
// n=16 applied through a DeltaTable versus the scratch rebuilds it
// replaces, all serial so the comparison is pure work, not parallelism.
// The perturbation alternates between two demand vectors so every
// iteration re-evaluates real changes, and the measured ratio
// scratch-build-table / delta-1p is the delta speedup recorded in
// results/delta_speedup.txt by scripts/reproduce.sh.

const (
	benchDeltaN      = 16
	benchDeltaSlices = 8
)

func BenchmarkDeltaApply(b *testing.B) {
	g := randomDeltaGame(rand.New(rand.NewSource(21)), benchDeltaN, benchDeltaSlices)
	const p = 5
	alt := [][]float64{
		append([]float64(nil), g.vecs[p]...),
		randomVec(rand.New(rand.NewSource(22)), benchDeltaSlices, 7),
	}

	b.Run("delta-1p", func(b *testing.B) {
		dt, err := NewDeltaTableIncremental(benchDeltaN, g.factory(), 1)
		if err != nil {
			b.Fatal(err)
		}
		add, remove, value := g.factory()()
		factory := func() (func(int), func(int), func() float64) { return add, remove, value }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.vecs[p] = alt[i%2]
			if _, err := dt.ApplyIncremental(1<<p, factory, 1); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("delta-1p-plain", func(b *testing.B) {
		dt, err := NewDeltaTable(benchDeltaN, g.plain(), 1)
		if err != nil {
			b.Fatal(err)
		}
		plain := g.plain()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.vecs[p] = alt[i%2]
			if _, err := dt.Apply(1<<p, plain, 1); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("scratch-build-table", func(b *testing.B) {
		plain := g.plain()
		for i := 0; i < b.N; i++ {
			g.vecs[p] = alt[i%2]
			if _, err := BuildTableParallel(benchDeltaN, plain, 1); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("scratch-incremental", func(b *testing.B) {
		factory := g.factory()
		for i := 0; i < b.N; i++ {
			g.vecs[p] = alt[i%2]
			if _, err := BuildTableIncrementalParallel(benchDeltaN, factory, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
