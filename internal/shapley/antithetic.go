package shapley

import (
	"math/rand"
)

// MonteCarloAntithetic estimates Shapley values like MonteCarlo but pairs
// every sampled permutation with its reverse — a classic antithetic
// variates construction. For monotone games (peak/demand games are
// monotone), a player early in one ordering is late in the paired one, so
// the two marginal contributions are negatively correlated and the paired
// average has lower variance than two independent samples. samples counts
// permutation evaluations (must be even; each pair costs two).
func MonteCarloAntithetic(n int, v SetFunc, samples int, rng *rand.Rand) ([]float64, error) {
	if n < 1 {
		return nil, ErrNoPlayers
	}
	if n > 63 {
		return nil, ErrTooManyPlayers
	}
	if samples < 2 || samples%2 != 0 {
		return nil, ErrOddAntitheticSamples
	}
	if v == nil {
		return nil, ErrNilGame
	}
	if rng == nil {
		return nil, ErrNilRNG
	}
	metricSamples.With("antithetic").Add(float64(samples))
	phi := make([]float64, n)
	perm := make([]int, n)
	walk := func() {
		mask := uint64(0)
		prev := v(0)
		for _, p := range perm {
			mask |= 1 << uint(p)
			cur := v(mask)
			phi[p] += cur - prev
			prev = cur
		}
	}
	for s := 0; s < samples/2; s++ {
		identityPerm(perm)
		shuffle(perm, rng)
		walk()
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			perm[i], perm[j] = perm[j], perm[i]
		}
		walk()
	}
	inv := 1 / float64(samples)
	for i := range phi {
		phi[i] *= inv
	}
	return phi, nil
}
