package shapley

import (
	"errors"
	"fmt"
)

// Sentinel errors for the argument-validation failures every estimator in
// this package shares. They exist so callers can branch on the failure class
// with errors.Is instead of matching message text — the Monte Carlo
// harnesses retry with adjusted budgets on ErrTooFewSamples, for example —
// and so the parallel engine can guarantee it fails the same way the serial
// core does. Errors carrying instance detail (player counts, table sizes)
// wrap the sentinel via fmt.Errorf("...: %w", ...).
var (
	// ErrNoPlayers reports a game with n < 1 players.
	ErrNoPlayers = errors.New("shapley: need at least one player")
	// ErrTooManyPlayers reports a bitmask game with more than 63 players
	// (coalition masks are uint64 with one sign bit reserved by the rngs).
	ErrTooManyPlayers = errors.New("shapley: bitmask games support at most 63 players")
	// ErrTooManyExactPlayers reports an exact-enumeration request above
	// MaxExactPlayers.
	ErrTooManyExactPlayers = errors.New("shapley: too many players for exact enumeration")
	// ErrTooManyOrderedPlayers reports an exact ordered-game request above
	// MaxExactOrderedPlayers.
	ErrTooManyOrderedPlayers = errors.New("shapley: too many players for exact ordered enumeration")
	// ErrTooFewSamples reports a sampling request with samples < 1.
	ErrTooFewSamples = errors.New("shapley: need at least one sample")
	// ErrOddAntitheticSamples reports an antithetic sampling request whose
	// budget is not a positive even number (each pair costs two samples).
	ErrOddAntitheticSamples = errors.New("shapley: antithetic sampling needs a positive even sample count")
	// ErrNilRNG reports a sampling request without a random source.
	ErrNilRNG = errors.New("shapley: nil rng")
	// ErrNilGame reports a nil characteristic function.
	ErrNilGame = errors.New("shapley: nil characteristic function")
	// ErrNilMarginals reports a nil ordered-game marginals function.
	ErrNilMarginals = errors.New("shapley: nil marginals function")
	// ErrTableSize reports a coalition table whose length is not 2^n.
	ErrTableSize = errors.New("shapley: coalition table length is not 2^n")
	// ErrScratchSize reports a caller-provided scratch buffer (phi, weights,
	// sort indices) whose length does not match the player count.
	ErrScratchSize = errors.New("shapley: scratch buffer length mismatch")
	// ErrChangedPlayers reports a delta-apply changed-player mask with bits
	// outside the table's n players.
	ErrChangedPlayers = errors.New("shapley: changed-player mask outside the game")
	// ErrWorkerPanic reports that a characteristic function (or marginals
	// function) panicked inside a parallel worker. The parallel entry
	// points recover the panic and return a *WorkerPanicError wrapping
	// this sentinel instead of crashing the process, so a long sweep can
	// checkpoint and surface the failure. Match with errors.Is; recover
	// the panic value and stack with errors.As on *WorkerPanicError.
	ErrWorkerPanic = errors.New("shapley: worker panicked")
)

// WorkerPanicError carries the recovered panic of a parallel worker: which
// worker, the panic value, and the goroutine stack captured at recovery.
// It wraps ErrWorkerPanic.
type WorkerPanicError struct {
	Worker int
	Value  any
	Stack  []byte
}

// Error implements error.
func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("shapley: worker %d panicked: %v\n%s", e.Worker, e.Value, e.Stack)
}

// Unwrap lets errors.Is(err, ErrWorkerPanic) match.
func (e *WorkerPanicError) Unwrap() error { return ErrWorkerPanic }

// checkSampling validates the shared sampling arguments of the bitmask-game
// Monte Carlo estimators.
func checkSampling(n, samples int) error {
	if n < 1 {
		return ErrNoPlayers
	}
	if n > 63 {
		return ErrTooManyPlayers
	}
	if samples < 1 {
		return ErrTooFewSamples
	}
	return nil
}
