package shapley

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// The parallel execution layer. Every estimator here is a sharding +
// reduction wrapper around the serial core in shapley.go / ordered.go /
// antithetic.go — the game logic is never duplicated, so the serial
// functions remain the single source of truth and the differential tests in
// parallel_test.go can check the wrappers against exact serial emulations.
//
// Determinism contract:
//
//   - BuildTableParallel, ExactFromTableParallel and ExactParallel return
//     results bit-for-bit identical to their serial counterparts for any
//     worker count: table entries are pure per-coalition values, and the
//     Shapley reduction partitions PLAYERS (not coalitions) across workers,
//     so every phi[i] accumulates its terms in exactly the serial order.
//   - BuildTableIncrementalParallel enumerates a fixed number of gray-code
//     blocks with fresh per-block state, so its output is independent of
//     the worker count; it equals the serial builder exactly whenever the
//     incremental state's arithmetic is exact over add/remove (e.g.
//     integer-valued demands), and within FP rounding otherwise.
//   - The sampling estimators (MonteCarloParallel and friends) shard the
//     sample budget across workers, each with an independent rng seeded via
//     WorkerSeeds. Their output is bit-for-bit reproducible for a given
//     (seed, worker count) but intentionally differs between worker counts
//     and from the serial single-stream estimators: all variants are
//     unbiased draws of the same estimator, not the same draw.

// resolveWorkers maps the public Parallelism convention to a concrete
// worker count: values below 1 mean "one worker per available CPU".
func resolveWorkers(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// runWorkers runs fn(w) for w in [0, workers) on that many goroutines and
// returns the summed per-worker busy time for the utilization metrics. A
// panicking fn — in practice, a panicking user-supplied characteristic or
// marginals function — is recovered inside its goroutine and converted to a
// *WorkerPanicError carrying the stack, so one bad game fails the solver
// call instead of crashing the whole process (the lowest-indexed panicking
// worker wins; the other workers still run to completion).
func runWorkers(workers int, fn func(w int)) (time.Duration, error) {
	call := func(w int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &WorkerPanicError{Worker: w, Value: r, Stack: debug.Stack()}
			}
		}()
		fn(w)
		return nil
	}
	if workers == 1 {
		start := time.Now()
		err := call(0)
		return time.Since(start), err
	}
	panics := make([]error, workers)
	var busy atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			panics[w] = call(w)
			busy.Add(int64(time.Since(start)))
		}(w)
	}
	wg.Wait()
	for _, err := range panics {
		if err != nil {
			return time.Duration(busy.Load()), err
		}
	}
	return time.Duration(busy.Load()), nil
}

// BuildTableParallel evaluates v over all 2^n coalitions like BuildTable,
// block-partitioning the mask range across workers (<= 0 selects one worker
// per CPU). v is called exactly once per coalition, concurrently, so it
// must be safe for concurrent use (pure functions and closures over
// read-only state qualify). The returned table is bit-for-bit identical to
// BuildTable's for any worker count.
func BuildTableParallel(n int, v SetFunc, workers int) ([]float64, error) {
	if err := checkExactN(n); err != nil {
		return nil, err
	}
	if v == nil {
		return nil, ErrNilGame
	}
	start := time.Now()
	table := make([]float64, 1<<uint(n))
	workers = min(resolveWorkers(workers), len(table))
	busy, err := runWorkers(workers, func(w int) {
		lo, hi := blockRange(len(table), workers, w)
		for mask := lo; mask < hi; mask++ {
			table[mask] = v(uint64(mask))
		}
	})
	if err != nil {
		return nil, err
	}
	metricExactCoalitions.Add(float64(len(table)))
	observeParallel("build-table", workers, time.Since(start), busy)
	return table, nil
}

// incrementalPrefixBits fixes the number of gray-code blocks enumerated by
// BuildTableIncrementalParallel: 2^6 = 64 blocks load-balance well past any
// realistic CPU count while keeping the per-block setup cost (O(n) adds and
// one fresh state) negligible against the 2^(n-6) coalitions inside.
const incrementalPrefixBits = 6

// BuildTableIncrementalParallel is the parallel form of
// BuildTableIncremental. Because incremental state is inherently mutable,
// the caller supplies a factory: newGame must return a fresh, independent
// (add, remove, value) triple describing the empty coalition. The mask
// range is split into a fixed number of blocks by their high bits; each
// block is enumerated with fresh state — the block's fixed players are
// added once, then the remaining players walk in gray-code order so every
// step toggles exactly one player. The block count does not depend on the
// worker count, so the output is deterministic for any parallelism.
func BuildTableIncrementalParallel(n int, newGame func() (add, remove func(player int), value func() float64), workers int) ([]float64, error) {
	if err := checkExactN(n); err != nil {
		return nil, err
	}
	if newGame == nil {
		return nil, ErrNilGame
	}
	start := time.Now()
	prefixBits := min(n, incrementalPrefixBits)
	low := n - prefixBits
	blocks := 1 << uint(prefixBits)
	table := make([]float64, 1<<uint(n))
	workers = min(resolveWorkers(workers), blocks)
	errs := make([]error, workers)
	busy, panicErr := runWorkers(workers, func(w int) {
		blo, bhi := blockRange(blocks, workers, w)
		for b := blo; b < bhi; b++ {
			if errs[w] = enumerateBlock(low, b, newGame, table); errs[w] != nil {
				return
			}
		}
	})
	if panicErr != nil {
		return nil, panicErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	metricExactCoalitions.Add(float64(len(table)))
	observeParallel("build-table-incremental", workers, time.Since(start), busy)
	return table, nil
}

// enumerateBlock fills the coalition table for the masks whose high bits
// equal b: fresh incremental state from newGame, the block's fixed players
// added once, then a gray-code walk over the low players — gray(j) and
// gray(j+1) differ in bit TrailingZeros(j+1), so each coalition after the
// first costs one add or remove plus one value(). Shared by the parallel
// and the checkpointed incremental table builders, so both produce the
// same enumeration (and therefore identical tables) per block.
func enumerateBlock(low, b int, newGame func() (add, remove func(player int), value func() float64), table []float64) error {
	add, remove, value := newGame()
	if add == nil || remove == nil || value == nil {
		return ErrNilGame
	}
	high := uint64(b) << uint(low)
	for rest := high; rest != 0; rest &= rest - 1 {
		add(bits.TrailingZeros64(rest))
	}
	gray := uint64(0)
	table[high] = value()
	for j := uint64(1); j < 1<<uint(low); j++ {
		bit := uint(bits.TrailingZeros64(j))
		if gray&(1<<bit) == 0 {
			add(int(bit))
		} else {
			remove(int(bit))
		}
		gray ^= 1 << bit
		table[high|gray] = value()
	}
	return nil
}

// ExactFromTableParallel computes exact Shapley values from a dense
// coalition table like ExactFromTable, partitioning the PLAYERS across
// workers: each worker scans the whole table in ascending mask order but
// accumulates only its players' marginals. Per-player accumulation order is
// therefore exactly the serial order, making the result bit-for-bit
// identical to ExactFromTable for any worker count.
func ExactFromTableParallel(n int, table []float64, workers int) ([]float64, error) {
	if err := checkExactN(n); err != nil {
		return nil, err
	}
	if len(table) != 1<<uint(n) {
		return nil, fmt.Errorf("shapley: table has %d entries, want 2^%d: %w", len(table), n, ErrTableSize)
	}
	start := time.Now()
	workers = min(resolveWorkers(workers), n)
	// w[s] = s!(n-s-1)!/n!, as in the serial solver.
	w := make([]float64, n)
	for s := 0; s < n; s++ {
		w[s] = 1 / (float64(n) * binomial(n-1, s))
	}
	phi := make([]float64, n)
	full := uint64(1)<<uint(n) - 1
	busy, err := runWorkers(workers, func(wk int) {
		plo, phiHi := blockRange(n, workers, wk)
		if plo == phiHi {
			return
		}
		// The worker's players as a bitmask, so the inner loop can skip
		// masks that already contain all of them.
		var mine uint64
		for p := plo; p < phiHi; p++ {
			mine |= 1 << uint(p)
		}
		for mask := uint64(0); mask <= full; mask++ {
			rest := ^mask & full & mine
			if rest == 0 {
				continue
			}
			vs := table[mask]
			weight := w[bits.OnesCount64(mask)]
			for rest != 0 {
				bit := rest & -rest
				i := bits.TrailingZeros64(bit)
				phi[i] += weight * (table[mask|bit] - vs)
				rest ^= bit
			}
		}
	})
	if err != nil {
		return nil, err
	}
	observeParallel("exact-from-table", workers, time.Since(start), busy)
	return phi, nil
}

// ExactParallel is the parallel form of Exact: BuildTableParallel followed
// by ExactFromTableParallel. v must be safe for concurrent use. The result
// is bit-for-bit identical to Exact for any worker count.
func ExactParallel(n int, v SetFunc, workers int) ([]float64, error) {
	table, err := BuildTableParallel(n, v, workers)
	if err != nil {
		return nil, err
	}
	return ExactFromTableParallel(n, table, workers)
}

// MonteCarloParallel estimates Shapley values like MonteCarlo with the
// permutation budget sharded across workers (<= 0 selects one worker per
// CPU; the count is clamped to samples). Worker w runs the serial estimator
// over its share with an independent rng seeded by WorkerSeeds(seed,
// workers)[w], and the shares are averaged with their sample weights in
// worker order — so the result is bit-for-bit reproducible for a given
// (seed, workers) pair. v must be safe for concurrent use.
func MonteCarloParallel(n int, v SetFunc, samples int, seed int64, workers int) ([]float64, error) {
	if err := checkSampling(n, samples); err != nil {
		return nil, err
	}
	if v == nil {
		return nil, ErrNilGame
	}
	return sampledParallel("monte-carlo", n, samples, seed, workers, 1,
		func(share int, rng *rand.Rand) ([]float64, error) {
			return MonteCarlo(n, v, share, rng)
		})
}

// MonteCarloAntitheticParallel is the parallel form of MonteCarloAntithetic:
// the PAIR budget (samples/2) is sharded across workers, so every worker
// keeps the even sample count the antithetic construction needs. Same
// determinism contract as MonteCarloParallel.
func MonteCarloAntitheticParallel(n int, v SetFunc, samples int, seed int64, workers int) ([]float64, error) {
	if n < 1 {
		return nil, ErrNoPlayers
	}
	if n > 63 {
		return nil, ErrTooManyPlayers
	}
	if samples < 2 || samples%2 != 0 {
		return nil, ErrOddAntitheticSamples
	}
	if v == nil {
		return nil, ErrNilGame
	}
	return sampledParallel("antithetic", n, samples, seed, workers, 2,
		func(share int, rng *rand.Rand) ([]float64, error) {
			return MonteCarloAntithetic(n, v, share, rng)
		})
}

// SampledOrderedParallel is the parallel form of SampledOrdered. Because
// ordered-game marginals functions usually close over mutable scratch state
// (incremental demand curves), the caller supplies a factory: newMarginals
// must return a fresh, independent OrderedMarginals per call. Same
// determinism contract as MonteCarloParallel.
func SampledOrderedParallel(n int, newMarginals func() OrderedMarginals, samples int, seed int64, workers int) ([]float64, error) {
	if n < 1 {
		return nil, ErrNoPlayers
	}
	if samples < 1 {
		return nil, ErrTooFewSamples
	}
	if newMarginals == nil {
		return nil, ErrNilMarginals
	}
	return sampledParallel("sampled-ordered", n, samples, seed, workers, 1,
		func(share int, rng *rand.Rand) ([]float64, error) {
			m := newMarginals()
			if m == nil {
				return nil, ErrNilMarginals
			}
			return SampledOrdered(n, m, share, rng)
		})
}

// sampledParallel shards a sample budget across workers in units of `unit`
// samples (1, or 2 for antithetic pairs), runs the serial estimator per
// shard, and reduces the per-worker averages with their sample weights in
// worker order. Arguments are pre-validated by the exported wrappers.
func sampledParallel(mode string, n, samples int, seed int64, workers, unit int, run func(share int, rng *rand.Rand) ([]float64, error)) ([]float64, error) {
	start := time.Now()
	units := samples / unit
	workers = min(resolveWorkers(workers), units)
	shares := shareSamples(units, workers)
	seeds := WorkerSeeds(seed, workers)
	ests := make([][]float64, workers)
	errs := make([]error, workers)
	busy, panicErr := runWorkers(workers, func(w int) {
		ests[w], errs[w] = run(shares[w]*unit, rand.New(rand.NewSource(seeds[w])))
	})
	if panicErr != nil {
		return nil, panicErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	phi := make([]float64, n)
	for w, est := range ests {
		weight := float64(shares[w]*unit) / float64(samples)
		for i, v := range est {
			phi[i] += v * weight
		}
	}
	observeParallel(mode, workers, time.Since(start), busy)
	return phi, nil
}

// shareSamples splits `samples` into `workers` near-equal shares, giving
// the remainder to the lowest-indexed workers. workers must be in
// [1, samples], so every share is positive.
func shareSamples(samples, workers int) []int {
	shares := make([]int, workers)
	base, rem := samples/workers, samples%workers
	for w := range shares {
		shares[w] = base
		if w < rem {
			shares[w]++
		}
	}
	return shares
}

// blockRange returns the half-open slice of `total` items owned by worker
// w of `workers`, contiguous and near-equal.
func blockRange(total, workers, w int) (lo, hi int) {
	return total * w / workers, total * (w + 1) / workers
}
