package shapley

import (
	"errors"
	"math/rand"
	"testing"
)

// Table-driven coverage of every estimator's argument validation: each bad
// call must return (not panic) the documented sentinel, matchable with
// errors.Is. This pins the "typed error instead of panic" contract for
// samples < 1, nil rngs, nil games and out-of-range player counts, across
// both the serial core and the parallel engine.
func TestTypedErrorPaths(t *testing.T) {
	game := func(uint64) float64 { return 0 }
	marginals := func(perm []int, out []float64) {}
	newGame := func() (func(int), func(int), func() float64) {
		noop := func(int) {}
		return noop, noop, func() float64 { return 0 }
	}
	newMarginals := func() OrderedMarginals { return marginals }
	rng := rand.New(rand.NewSource(1))

	cases := []struct {
		name string
		call func() ([]float64, error)
		want error
	}{
		{"Exact/no players", func() ([]float64, error) { return Exact(0, game) }, ErrNoPlayers},
		{"Exact/too many players", func() ([]float64, error) { return Exact(MaxExactPlayers+1, game) }, ErrTooManyExactPlayers},
		{"BuildTable/nil game", func() ([]float64, error) { return BuildTable(3, nil) }, ErrNilGame},
		{"BuildTableIncremental/no players", func() ([]float64, error) { return BuildTableIncremental(0, nil, nil, nil) }, ErrNoPlayers},
		{"BuildTableIncremental/nil game", func() ([]float64, error) { return BuildTableIncremental(3, nil, nil, nil) }, ErrNilGame},
		{"ExactFromTable/table size", func() ([]float64, error) { return ExactFromTable(3, make([]float64, 7)) }, ErrTableSize},
		{"MonteCarlo/no players", func() ([]float64, error) { return MonteCarlo(0, game, 1, rng) }, ErrNoPlayers},
		{"MonteCarlo/too many players", func() ([]float64, error) { return MonteCarlo(64, game, 1, rng) }, ErrTooManyPlayers},
		{"MonteCarlo/no samples", func() ([]float64, error) { return MonteCarlo(2, game, 0, rng) }, ErrTooFewSamples},
		{"MonteCarlo/negative samples", func() ([]float64, error) { return MonteCarlo(2, game, -5, rng) }, ErrTooFewSamples},
		{"MonteCarlo/nil game", func() ([]float64, error) { return MonteCarlo(2, nil, 1, rng) }, ErrNilGame},
		{"MonteCarlo/nil rng", func() ([]float64, error) { return MonteCarlo(2, game, 1, nil) }, ErrNilRNG},
		{"MonteCarloAntithetic/odd samples", func() ([]float64, error) { return MonteCarloAntithetic(2, game, 3, rng) }, ErrOddAntitheticSamples},
		{"MonteCarloAntithetic/zero samples", func() ([]float64, error) { return MonteCarloAntithetic(2, game, 0, rng) }, ErrOddAntitheticSamples},
		{"MonteCarloAntithetic/nil game", func() ([]float64, error) { return MonteCarloAntithetic(2, nil, 2, rng) }, ErrNilGame},
		{"MonteCarloAntithetic/nil rng", func() ([]float64, error) { return MonteCarloAntithetic(2, game, 2, nil) }, ErrNilRNG},
		{"ExactOrdered/no players", func() ([]float64, error) { return ExactOrdered(0, marginals) }, ErrNoPlayers},
		{"ExactOrdered/too many players", func() ([]float64, error) { return ExactOrdered(MaxExactOrderedPlayers+1, marginals) }, ErrTooManyOrderedPlayers},
		{"ExactOrdered/nil marginals", func() ([]float64, error) { return ExactOrdered(3, nil) }, ErrNilMarginals},
		{"SampledOrdered/no players", func() ([]float64, error) { return SampledOrdered(0, marginals, 1, rng) }, ErrNoPlayers},
		{"SampledOrdered/no samples", func() ([]float64, error) { return SampledOrdered(2, marginals, 0, rng) }, ErrTooFewSamples},
		{"SampledOrdered/nil marginals", func() ([]float64, error) { return SampledOrdered(2, nil, 1, rng) }, ErrNilMarginals},
		{"SampledOrdered/nil rng", func() ([]float64, error) { return SampledOrdered(2, marginals, 1, nil) }, ErrNilRNG},

		{"BuildTableParallel/no players", func() ([]float64, error) { return BuildTableParallel(0, game, 2) }, ErrNoPlayers},
		{"BuildTableParallel/nil game", func() ([]float64, error) { return BuildTableParallel(3, nil, 2) }, ErrNilGame},
		{"BuildTableIncrementalParallel/nil factory", func() ([]float64, error) { return BuildTableIncrementalParallel(3, nil, 2) }, ErrNilGame},
		{"BuildTableIncrementalParallel/nil triple", func() ([]float64, error) {
			return BuildTableIncrementalParallel(3, func() (func(int), func(int), func() float64) { return nil, nil, nil }, 2)
		}, ErrNilGame},
		{"ExactParallel/too many players", func() ([]float64, error) { return ExactParallel(MaxExactPlayers+1, game, 2) }, ErrTooManyExactPlayers},
		{"ExactFromTableParallel/table size", func() ([]float64, error) { return ExactFromTableParallel(3, make([]float64, 9), 2) }, ErrTableSize},
		{"MonteCarloParallel/no players", func() ([]float64, error) { return MonteCarloParallel(0, game, 1, 1, 2) }, ErrNoPlayers},
		{"MonteCarloParallel/too many players", func() ([]float64, error) { return MonteCarloParallel(64, game, 1, 1, 2) }, ErrTooManyPlayers},
		{"MonteCarloParallel/no samples", func() ([]float64, error) { return MonteCarloParallel(2, game, 0, 1, 2) }, ErrTooFewSamples},
		{"MonteCarloParallel/nil game", func() ([]float64, error) { return MonteCarloParallel(2, nil, 1, 1, 2) }, ErrNilGame},
		{"MonteCarloAntitheticParallel/odd samples", func() ([]float64, error) { return MonteCarloAntitheticParallel(2, game, 5, 1, 2) }, ErrOddAntitheticSamples},
		{"MonteCarloAntitheticParallel/nil game", func() ([]float64, error) { return MonteCarloAntitheticParallel(2, nil, 2, 1, 2) }, ErrNilGame},
		{"SampledOrderedParallel/no players", func() ([]float64, error) { return SampledOrderedParallel(0, newMarginals, 1, 1, 2) }, ErrNoPlayers},
		{"SampledOrderedParallel/no samples", func() ([]float64, error) { return SampledOrderedParallel(2, newMarginals, 0, 1, 2) }, ErrTooFewSamples},
		{"SampledOrderedParallel/nil factory", func() ([]float64, error) { return SampledOrderedParallel(2, nil, 1, 1, 2) }, ErrNilMarginals},
		{"SampledOrderedParallel/nil marginals", func() ([]float64, error) {
			return SampledOrderedParallel(2, func() OrderedMarginals { return nil }, 1, 1, 2)
		}, ErrNilMarginals},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := tc.call()
			if out != nil {
				t.Errorf("expected nil result, got %v", out)
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("got error %v, want %v", err, tc.want)
			}
		})
	}

	// Valid calls must NOT hit the sentinels (guards against inverted
	// conditions in the table above).
	if _, err := MonteCarlo(2, game, 1, rng); err != nil {
		t.Errorf("minimal valid MonteCarlo call failed: %v", err)
	}
	if _, err := BuildTableIncrementalParallel(2, newGame, 1); err != nil {
		t.Errorf("minimal valid incremental parallel call failed: %v", err)
	}
}

// TestPeakGameTypedErrors covers the peak-game validation separately (its
// negative-peak errors carry instance detail, not a shared sentinel).
func TestPeakGameTypedErrors(t *testing.T) {
	if _, err := PeakGame(nil); !errors.Is(err, ErrNoPlayers) {
		t.Errorf("empty peak game: %v", err)
	}
	if _, err := PeakGame([]float64{1, -1}); err == nil {
		t.Error("negative peak must error")
	}
}
