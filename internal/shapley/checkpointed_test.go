package shapley

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fairco2/internal/checkpoint"
)

// peakDemandGame builds the incremental demand-curve game used by the
// attribution paths: rectangular workloads, value = peak of the summed curve.
func peakDemandGame(rng *rand.Rand, n, slices int) func() (func(int), func(int), func() float64) {
	starts := make([]int, n)
	ends := make([]int, n)
	cores := make([]float64, n)
	for i := 0; i < n; i++ {
		starts[i] = rng.Intn(slices)
		ends[i] = starts[i] + 1 + rng.Intn(slices-starts[i])
		cores[i] = float64(1 + rng.Intn(64))
	}
	return func() (func(int), func(int), func() float64) {
		demand := make([]float64, slices)
		add := func(i int) {
			for t := starts[i]; t < ends[i]; t++ {
				demand[t] += cores[i]
			}
		}
		remove := func(i int) {
			for t := starts[i]; t < ends[i]; t++ {
				demand[t] -= cores[i]
			}
		}
		value := func() float64 {
			peak := 0.0
			for _, d := range demand {
				if d > peak {
					peak = d
				}
			}
			return peak
		}
		return add, remove, value
	}
}

func TestBuildTableCheckpointedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 9
	makeGame := peakDemandGame(rng, n, 8)
	add, remove, value := makeGame()
	serial, err := BuildTableIncremental(n, add, remove, value)
	if err != nil {
		t.Fatal(err)
	}
	ck := checkpoint.Spec{Dir: t.TempDir(), Every: 7}
	table, err := BuildTableIncrementalCheckpointed(context.Background(), n, makeGame, 3, ck)
	if err != nil {
		t.Fatal(err)
	}
	equalSlices(t, table, serial, "BuildTableIncrementalCheckpointed")

	// A second run against the completed snapshot recomputes nothing.
	again, err := BuildTableIncrementalCheckpointed(context.Background(), n, makeGame, 1, ck)
	if err != nil {
		t.Fatal(err)
	}
	equalSlices(t, again, serial, "fully-resumed table")
}

func TestBuildTableCheckpointedResumesAfterInterrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const n = 8
	makeGame := peakDemandGame(rng, n, 10)
	add, remove, value := makeGame()
	serial, err := BuildTableIncremental(n, add, remove, value)
	if err != nil {
		t.Fatal(err)
	}

	ck := checkpoint.Spec{Dir: t.TempDir(), Every: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildTableIncrementalCheckpointed(ctx, n, makeGame, 2, ck); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: %v", err)
	}
	table, err := BuildTableIncrementalCheckpointed(context.Background(), n, makeGame, 2, ck)
	if err != nil {
		t.Fatal(err)
	}
	equalSlices(t, table, serial, "resumed table")
}

func TestBuildTableCheckpointedRejectsDifferentPlayerCount(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	makeGame := peakDemandGame(rng, 7, 6)
	ck := checkpoint.Spec{Dir: t.TempDir(), Every: 4}
	if _, err := BuildTableIncrementalCheckpointed(context.Background(), 7, makeGame, 2, ck); err != nil {
		t.Fatal(err)
	}
	smaller := peakDemandGame(rng, 6, 6)
	if _, err := BuildTableIncrementalCheckpointed(context.Background(), 6, smaller, 2, ck); !errors.Is(err, checkpoint.ErrStateMismatch) {
		t.Fatalf("resume with different n: %v, want ErrStateMismatch", err)
	}
}

func TestBuildTableCheckpointedDisabledSpecDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	const n = 6
	makeGame := peakDemandGame(rng, n, 5)
	add, remove, value := makeGame()
	serial, err := BuildTableIncremental(n, add, remove, value)
	if err != nil {
		t.Fatal(err)
	}
	table, err := BuildTableIncrementalCheckpointed(context.Background(), n, makeGame, 2, checkpoint.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	equalSlices(t, table, serial, "disabled-spec table")

	if _, err := BuildTableIncrementalCheckpointed(context.Background(), 0, makeGame, 2, checkpoint.Spec{Dir: t.TempDir()}); !errors.Is(err, ErrNoPlayers) {
		t.Errorf("n=0: %v", err)
	}
	if _, err := BuildTableIncrementalCheckpointed(context.Background(), 3, nil, 2, checkpoint.Spec{Dir: t.TempDir()}); !errors.Is(err, ErrNilGame) {
		t.Errorf("nil game: %v", err)
	}
}

func TestTableSweepRestoreCorruption(t *testing.T) {
	sweep := &tableSweep{n: 4, low: 0, done: make([]bool, 16), table: make([]float64, 16)}
	for i := range sweep.done {
		sweep.done[i] = i%2 == 0
		sweep.table[i] = float64(i)
	}
	payload, err := sweep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *tableSweep {
		return &tableSweep{n: 4, low: 0, done: make([]bool, 16), table: make([]float64, 16)}
	}
	if err := fresh().Restore(payload); err != nil {
		t.Fatalf("intact restore: %v", err)
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"short header", payload[:4], checkpoint.ErrCorruptCheckpoint},
		{"truncated block", payload[:len(payload)-3], checkpoint.ErrCorruptCheckpoint},
		{"trailing bytes", append(append([]byte(nil), payload...), 0), checkpoint.ErrCorruptCheckpoint},
	}
	for _, tc := range cases {
		if err := fresh().Restore(tc.buf); !errors.Is(err, tc.want) {
			t.Errorf("%s: %v, want %v", tc.name, err, tc.want)
		}
	}
	wrongN := &tableSweep{n: 5, low: 0, done: make([]bool, 32), table: make([]float64, 32)}
	if err := wrongN.Restore(payload); !errors.Is(err, checkpoint.ErrStateMismatch) {
		t.Errorf("wrong n: %v", err)
	}
}
