package shapley

import (
	"fmt"
	"math"
	"math/rand"
)

// MaxExactOrderedPlayers bounds exact permutation enumeration (n! growth);
// 10! = 3.6M permutations is the practical ceiling.
const MaxExactOrderedPlayers = 10

// OrderedMarginals computes, for one arrival order perm, the marginal
// contribution of each player at the moment it arrives, writing the result
// into marginals indexed by player id (marginals[perm[k]] is the k-th
// arrival's contribution). Ordered games generalize set games: the paper's
// colocation ground truth (§6.3) is one, because a workload's marginal
// carbon depends on which node had a free slot when it arrived.
type OrderedMarginals func(perm []int, marginals []float64)

// ExactOrdered averages marginal contributions over all n! arrival orders.
func ExactOrdered(n int, m OrderedMarginals) ([]float64, error) {
	if n < 1 {
		return nil, ErrNoPlayers
	}
	if n > MaxExactOrderedPlayers {
		return nil, fmt.Errorf("shapley: exact ordered games limited to %d players (got %d), use SampledOrdered: %w", MaxExactOrderedPlayers, n, ErrTooManyOrderedPlayers)
	}
	if m == nil {
		return nil, ErrNilMarginals
	}
	phi := make([]float64, n)
	marginals := make([]float64, n)
	perm := make([]int, n)
	identityPerm(perm)

	count := 0
	// Heap's algorithm, iterative form.
	c := make([]int, n)
	emit := func() {
		m(perm, marginals)
		for i, v := range marginals {
			phi[i] += v
		}
		count++
	}
	emit()
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			emit()
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	metricSamples.With("exact-ordered").Add(float64(count))
	inv := 1 / float64(count)
	for k := range phi {
		phi[k] *= inv
	}
	return phi, nil
}

// SampledOrdered estimates ordered-game Shapley values from random arrival
// orders. The estimator is unbiased with respect to the uniform
// distribution over permutations.
func SampledOrdered(n int, m OrderedMarginals, samples int, rng *rand.Rand) ([]float64, error) {
	if n < 1 {
		return nil, ErrNoPlayers
	}
	if samples < 1 {
		return nil, ErrTooFewSamples
	}
	if m == nil {
		return nil, ErrNilMarginals
	}
	if rng == nil {
		return nil, ErrNilRNG
	}
	metricSamples.With("sampled-ordered").Add(float64(samples))
	phi := make([]float64, n)
	sumsq := make([]float64, n)
	marginals := make([]float64, n)
	perm := make([]int, n)
	for s := 0; s < samples; s++ {
		identityPerm(perm)
		shuffle(perm, rng)
		m(perm, marginals)
		for i, v := range marginals {
			phi[i] += v
			sumsq[i] += v * v
		}
	}
	inv := 1 / float64(samples)
	for i := range phi {
		phi[i] *= inv
	}
	metricSampledStderr.Set(stderrRatio(phi, sumsq, samples))
	return phi, nil
}

// stderrRatio summarizes a sampling run's convergence as a single scalar:
// the RMS of the per-player standard errors of the mean, relative to the
// grand total |sum phi|. Zero when the estimate is exact (e.g. a single
// player) or the total is zero.
func stderrRatio(phi, sumsq []float64, samples int) float64 {
	if samples < 2 {
		return 0
	}
	total, msq := 0.0, 0.0
	for i, mean := range phi {
		total += mean
		variance := (sumsq[i]/float64(samples) - mean*mean) * float64(samples) / float64(samples-1)
		if variance > 0 {
			msq += variance / float64(samples)
		}
	}
	if total == 0 {
		return 0
	}
	return math.Sqrt(msq/float64(len(phi))) / math.Abs(total)
}
