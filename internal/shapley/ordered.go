package shapley

import (
	"errors"
	"fmt"
	"math/rand"
)

// MaxExactOrderedPlayers bounds exact permutation enumeration (n! growth);
// 10! = 3.6M permutations is the practical ceiling.
const MaxExactOrderedPlayers = 10

// OrderedMarginals computes, for one arrival order perm, the marginal
// contribution of each player at the moment it arrives, writing the result
// into marginals indexed by player id (marginals[perm[k]] is the k-th
// arrival's contribution). Ordered games generalize set games: the paper's
// colocation ground truth (§6.3) is one, because a workload's marginal
// carbon depends on which node had a free slot when it arrived.
type OrderedMarginals func(perm []int, marginals []float64)

// ExactOrdered averages marginal contributions over all n! arrival orders.
func ExactOrdered(n int, m OrderedMarginals) ([]float64, error) {
	if n < 1 {
		return nil, errors.New("shapley: need at least one player")
	}
	if n > MaxExactOrderedPlayers {
		return nil, fmt.Errorf("shapley: exact ordered games limited to %d players (got %d); use SampledOrdered", MaxExactOrderedPlayers, n)
	}
	if m == nil {
		return nil, errors.New("shapley: nil marginals function")
	}
	phi := make([]float64, n)
	marginals := make([]float64, n)
	perm := make([]int, n)
	identityPerm(perm)

	count := 0
	// Heap's algorithm, iterative form.
	c := make([]int, n)
	emit := func() {
		m(perm, marginals)
		for i, v := range marginals {
			phi[i] += v
		}
		count++
	}
	emit()
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			emit()
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	inv := 1 / float64(count)
	for k := range phi {
		phi[k] *= inv
	}
	return phi, nil
}

// SampledOrdered estimates ordered-game Shapley values from random arrival
// orders. The estimator is unbiased with respect to the uniform
// distribution over permutations.
func SampledOrdered(n int, m OrderedMarginals, samples int, rng *rand.Rand) ([]float64, error) {
	if n < 1 {
		return nil, errors.New("shapley: need at least one player")
	}
	if samples < 1 {
		return nil, errors.New("shapley: need at least one sample")
	}
	if m == nil {
		return nil, errors.New("shapley: nil marginals function")
	}
	if rng == nil {
		return nil, errors.New("shapley: nil rng")
	}
	phi := make([]float64, n)
	marginals := make([]float64, n)
	perm := make([]int, n)
	for s := 0; s < samples; s++ {
		identityPerm(perm)
		shuffle(perm, rng)
		m(perm, marginals)
		for i, v := range marginals {
			phi[i] += v
		}
	}
	inv := 1 / float64(samples)
	for i := range phi {
		phi[i] *= inv
	}
	return phi, nil
}
