// Package sci implements the Green Software Foundation's Software Carbon
// Intensity metric — the embodied-attribution baseline the paper compares
// against (§3, "RUP-Baseline" uses SCI for embodied carbon). The SCI
// specification defines
//
//	SCI = (E * I + M) / R
//
// where E is the software's energy, I the grid carbon intensity, M its
// embodied-carbon share, and R the functional unit (requests, users,
// jobs). M follows SCI's time- and resource-share formula:
//
//	M = TE * (TiR / EL) * (RR / ToR)
//
// with TE the total embodied carbon of the hardware, TiR the reserved
// time, EL the hardware's expected lifespan, RR the reserved resources and
// ToR the hardware's total resources. Note what is missing: any notion of
// when the reservation happened or who else was on the machine — precisely
// the two gaps (§3.1) Fair-CO2 exists to close.
package sci

import (
	"errors"
	"fmt"

	"fairco2/internal/carbon"
	"fairco2/internal/units"
)

// Report is one SCI computation with its inputs and breakdown.
type Report struct {
	// OperationalCarbon is E * I.
	OperationalCarbon units.GramsCO2e
	// EmbodiedCarbon is M.
	EmbodiedCarbon units.GramsCO2e
	// FunctionalUnits is R.
	FunctionalUnits float64
	// SCI is the score in gCO2e per functional unit.
	SCI float64
}

// Input collects the SCI formula's terms.
type Input struct {
	// Energy is E, the software's metered energy.
	Energy units.Joules
	// Intensity is I, the grid carbon intensity.
	Intensity units.CarbonIntensity
	// Server is the hardware whose embodied carbon is shared (TE and EL
	// come from it).
	Server *carbon.Server
	// ReservedCores is RR over a ToR of the server's logical cores.
	ReservedCores float64
	// Reserved is TiR, how long the resources were held.
	Reserved units.Seconds
	// FunctionalUnits is R: requests served, jobs completed, users...
	FunctionalUnits float64
}

// Compute evaluates the SCI score.
func Compute(in Input) (Report, error) {
	switch {
	case in.Energy < 0:
		return Report{}, errors.New("sci: negative energy")
	case in.Intensity < 0:
		return Report{}, errors.New("sci: negative intensity")
	case in.Server == nil:
		return Report{}, errors.New("sci: nil server")
	case in.ReservedCores <= 0:
		return Report{}, errors.New("sci: reserved cores must be positive")
	case in.Reserved <= 0:
		return Report{}, errors.New("sci: reserved time must be positive")
	case in.FunctionalUnits <= 0:
		return Report{}, errors.New("sci: functional units must be positive")
	}
	if err := in.Server.Validate(); err != nil {
		return Report{}, err
	}
	totalCores := float64(in.Server.Cores * 2) // logical cores (SMT-2)
	if in.ReservedCores > totalCores {
		return Report{}, fmt.Errorf("sci: reserved %v cores exceed the server's %v", in.ReservedCores, totalCores)
	}

	operational := units.Emissions(in.Energy, in.Intensity)
	te := float64(in.Server.TotalEmbodied().Grams())
	m := te * (float64(in.Reserved) / float64(in.Server.Lifetime)) * (in.ReservedCores / totalCores)
	embodied := units.GramsCO2e(m)

	return Report{
		OperationalCarbon: operational,
		EmbodiedCarbon:    embodied,
		FunctionalUnits:   in.FunctionalUnits,
		SCI:               (float64(operational) + m) / in.FunctionalUnits,
	}, nil
}
