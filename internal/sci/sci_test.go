package sci

import (
	"math"
	"testing"

	"fairco2/internal/carbon"
	"fairco2/internal/units"
)

func validInput() Input {
	return Input{
		Energy:          units.KilowattHours(2).Joules(),
		Intensity:       400,
		Server:          carbon.NewReferenceServer(),
		ReservedCores:   48,
		Reserved:        units.SecondsPerDay,
		FunctionalUnits: 1000,
	}
}

func TestComputeBreakdown(t *testing.T) {
	in := validInput()
	rep, err := Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	// Operational: 2 kWh x 400 g/kWh = 800 g.
	if math.Abs(float64(rep.OperationalCarbon)-800) > 1e-9 {
		t.Errorf("operational = %v, want 800", rep.OperationalCarbon)
	}
	// Embodied: TE * (1 day / 4 years) * (48 / 96 cores).
	te := float64(in.Server.TotalEmbodied().Grams())
	wantM := te * (86400.0 / float64(in.Server.Lifetime)) * 0.5
	if math.Abs(float64(rep.EmbodiedCarbon)-wantM) > 1e-6 {
		t.Errorf("embodied = %v, want %v", rep.EmbodiedCarbon, wantM)
	}
	wantSCI := (800 + wantM) / 1000
	if math.Abs(rep.SCI-wantSCI) > 1e-9 {
		t.Errorf("SCI = %v, want %v", rep.SCI, wantSCI)
	}
}

func TestSCIIgnoresTiming(t *testing.T) {
	// The gap the paper targets: SCI's M is identical whether the
	// reservation ran at peak or off-peak — only duration and share
	// matter. Two computations differing only in hypothetical timing
	// context are indistinguishable by construction; what we can assert
	// is linearity in reserved time and cores.
	in := validInput()
	base, err := Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Reserved *= 2
	double, err := Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(double.EmbodiedCarbon)-2*float64(base.EmbodiedCarbon)) > 1e-6 {
		t.Error("M must be linear in reserved time")
	}
	in = validInput()
	in.ReservedCores = 96
	wide, err := Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(wide.EmbodiedCarbon)-2*float64(base.EmbodiedCarbon)) > 1e-6 {
		t.Error("M must be linear in reserved cores")
	}
}

func TestComputeErrors(t *testing.T) {
	cases := []func(*Input){
		func(i *Input) { i.Energy = -1 },
		func(i *Input) { i.Intensity = -1 },
		func(i *Input) { i.Server = nil },
		func(i *Input) { i.ReservedCores = 0 },
		func(i *Input) { i.ReservedCores = 500 },
		func(i *Input) { i.Reserved = 0 },
		func(i *Input) { i.FunctionalUnits = 0 },
	}
	for idx, mutate := range cases {
		in := validInput()
		mutate(&in)
		if _, err := Compute(in); err == nil {
			t.Errorf("case %d: expected error", idx)
		}
	}
	in := validInput()
	bad := *carbon.NewReferenceServer()
	bad.Cores = 0
	in.Server = &bad
	if _, err := Compute(in); err == nil {
		t.Error("invalid server should error")
	}
}
