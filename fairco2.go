package fairco2

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"fairco2/internal/attribution"
	"fairco2/internal/carbon"
	"fairco2/internal/checkpoint"
	"fairco2/internal/colocation"
	"fairco2/internal/forecast"
	"fairco2/internal/schedule"
	"fairco2/internal/temporal"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
	"fairco2/internal/workload"
)

// Type aliases surface the library's core vocabulary at the root so users
// interact with one import path.
type (
	// GramsCO2e is a mass of CO2-equivalent emissions in grams.
	GramsCO2e = units.GramsCO2e
	// CarbonIntensity is grid carbon intensity in gCO2e/kWh.
	CarbonIntensity = units.CarbonIntensity
	// Seconds is a duration in seconds.
	Seconds = units.Seconds
	// Series is a uniformly-sampled time series.
	Series = timeseries.Series
	// Schedule is a dynamic-demand workload schedule.
	Schedule = schedule.Schedule
	// ScheduledWorkload is one entry of a Schedule.
	ScheduledWorkload = schedule.Workload
	// Server is the hardware carbon model of one node.
	Server = carbon.Server
	// WorkloadProfile describes one benchmark workload.
	WorkloadProfile = workload.Profile
)

// Method names accepted by AttributeSchedule.
const (
	// MethodGroundTruth is the exact Shapley value (exponential cost;
	// schedules are limited to 24 workloads).
	MethodGroundTruth = "ground-truth"
	// MethodRUP is the resource-utilization-proportional baseline
	// (Google operational accounting + SCI embodied accounting).
	MethodRUP = "rup"
	// MethodDemandProportional attributes proportional to instantaneous
	// demand.
	MethodDemandProportional = "demand-proportional"
	// MethodFairCO2 is Fair-CO2's Temporal Shapley attribution.
	MethodFairCO2 = "fair-co2"
)

// ReferenceServer returns the paper's evaluation server model (2x Xeon
// Gold 6240R, 192 GB DDR4, 480 GB SSD).
func ReferenceServer() *Server { return carbon.NewReferenceServer() }

// WorkloadSuite returns the paper's 15-workload benchmark suite.
func WorkloadSuite() []*WorkloadProfile { return workload.Suite() }

// AttributeSchedule divides an embodied-carbon budget across the workloads
// of a dynamic-demand schedule using the named method. The returned slice
// is indexed by workload ID and always sums to the budget.
func AttributeSchedule(method string, s *Schedule, budget GramsCO2e) ([]float64, error) {
	return AttributeScheduleParallel(method, s, budget, 0)
}

// AttributeScheduleParallel is AttributeSchedule with an explicit Shapley
// worker count: 0 auto-sizes to GOMAXPROCS, 1 forces the serial solvers,
// n > 1 uses n workers. Every method is deterministic — the attribution is
// identical for any parallelism value (schedules demand integer cores, so
// coalition peaks carry no rounding).
func AttributeScheduleParallel(method string, s *Schedule, budget GramsCO2e, parallelism int) ([]float64, error) {
	var m attribution.Method
	switch method {
	case MethodGroundTruth:
		m = attribution.GroundTruth{Parallelism: parallelism}
	case MethodRUP:
		m = attribution.RUPBaseline{}
	case MethodDemandProportional:
		m = attribution.DemandProportional{}
	case MethodFairCO2:
		m = attribution.TemporalShapley{Parallelism: parallelism}
	default:
		return nil, fmt.Errorf("fairco2: unknown attribution method %q", method)
	}
	return m.Attribute(s, budget)
}

// AttributeScheduleCheckpointed is AttributeScheduleParallel with context
// cancellation and crash-safe checkpoint/resume rooted at checkpointDir
// (empty disables checkpointing; checkpointEvery is the number of completed
// work units between snapshots). Only the ground-truth method has
// checkpoint-worthy cost — its exact coalition-table build is O(2^n) — so
// the other methods run unchanged. The checkpoint directory must be
// dedicated to one (schedule, budget) pair: the snapshot cannot fingerprint
// the characteristic function itself.
func AttributeScheduleCheckpointed(ctx context.Context, method string, s *Schedule, budget GramsCO2e, parallelism int, checkpointDir string, checkpointEvery int) ([]float64, error) {
	if method == MethodGroundTruth && checkpointDir != "" {
		m := attribution.GroundTruth{Parallelism: parallelism}
		return m.AttributeCheckpointed(ctx, s, budget, checkpoint.Spec{Dir: checkpointDir, Every: checkpointEvery})
	}
	return AttributeScheduleParallel(method, s, budget, parallelism)
}

// EmbodiedIntensitySignal runs Temporal Shapley over a resource-demand
// series, attributing the carbon budget across time and returning the
// dynamic intensity signal in gCO2e per resource-second. splits is the
// hierarchical schedule (its product must equal the sample count); pass
// nil for a single level.
func EmbodiedIntensitySignal(demand *Series, budget GramsCO2e, splits []int) (*Series, error) {
	if demand == nil {
		return nil, errors.New("fairco2: nil demand series")
	}
	if len(splits) == 0 {
		splits = []int{demand.Len()}
	}
	return temporal.IntensitySignal(demand, budget, temporal.Config{SplitRatios: splits})
}

// AttributeUsage prices a workload's resource usage under an intensity
// signal: the integral of usage x intensity.
func AttributeUsage(intensity, usage *Series) (GramsCO2e, error) {
	return temporal.AttributeUsage(intensity, usage)
}

// LiveIntensitySignal extends a demand history with a forecast and returns
// the Temporal Shapley intensity signal over history plus horizon — the
// live signal of §5.3 that lets tenants optimize placement against
// projected embodied carbon. horizonSamples continues the history's grid;
// the budget covers the whole (history + horizon) window; splits must
// multiply to history.Len() + horizonSamples.
func LiveIntensitySignal(history *Series, horizonSamples int, budget GramsCO2e, splits []int) (*Series, error) {
	if history == nil {
		return nil, errors.New("fairco2: nil history")
	}
	model, err := forecast.Fit(history, forecast.DefaultConfig())
	if err != nil {
		return nil, err
	}
	predicted, err := model.Forecast(horizonSamples)
	if err != nil {
		return nil, err
	}
	values := append(append([]float64(nil), history.Values...), predicted.Values...)
	stitched := timeseries.New(history.Start, history.Step, values)
	if len(splits) == 0 {
		splits = []int{stitched.Len()}
	}
	return temporal.IntensitySignal(stitched, budget, temporal.Config{SplitRatios: splits})
}

// ColocationAttribution is the per-workload result of a colocation
// scenario attribution.
type ColocationAttribution struct {
	// Workload is the suite workload name.
	Workload workload.Name
	// Carbon is the attributed footprint in gCO2e.
	Carbon GramsCO2e
}

// AttributeColocation attributes the full carbon (embodied + static +
// dynamic) of pairwise-colocated workloads. names lists the scenario
// members in pairing order ((0,1), (2,3), ...; an odd tail runs alone);
// method is MethodGroundTruth, MethodRUP or MethodFairCO2. seed drives the
// permutation sampling that ground truth needs beyond 7 workloads.
func AttributeColocation(method string, names []workload.Name, gridCI CarbonIntensity, seed int64) ([]ColocationAttribution, error) {
	char, err := workload.Characterize(workload.Suite())
	if err != nil {
		return nil, err
	}
	env, err := colocation.NewEnvironment(gridCI, char)
	if err != nil {
		return nil, err
	}
	members := make([]int, len(names))
	for i, n := range names {
		idx, err := char.Index(n)
		if err != nil {
			return nil, err
		}
		members[i] = idx
	}
	scen := &colocation.Scenario{Env: env, Members: members}

	var attr []float64
	switch method {
	case MethodGroundTruth:
		rng := rand.New(rand.NewSource(seed))
		attr, err = colocation.GroundTruth(scen, colocation.DefaultGroundTruthConfig(rng))
	case MethodRUP:
		attr, err = colocation.RUP(scen)
	case MethodFairCO2:
		var factors []colocation.Factor
		factors, err = colocation.FullHistoryFactors(scen)
		if err == nil {
			attr, err = colocation.FairCO2(scen, factors)
		}
	default:
		return nil, fmt.Errorf("fairco2: unknown colocation method %q", method)
	}
	if err != nil {
		return nil, err
	}
	out := make([]ColocationAttribution, len(attr))
	for i, v := range attr {
		out[i] = ColocationAttribution{Workload: names[i], Carbon: GramsCO2e(v)}
	}
	return out, nil
}
