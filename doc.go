// Package fairco2 is a from-scratch Go implementation of Fair-CO2 (Han,
// Kakadia, Lee, Gupta — ISCA 2025): fair attribution of cloud datacenter
// operational and embodied carbon emissions to user workloads, using the
// Shapley value as the fairness ground truth.
//
// The library provides:
//
//   - Ground-truth Shapley attribution for dynamic-demand schedules
//     (workloads as players, peak demand as the characteristic function)
//     and for colocation scenarios (arrival-order games over paired
//     tenants), plus the industry baselines it is compared against.
//   - Temporal Shapley: Fair-CO2's scalable demand-aware attribution of
//     embodied and static-operational carbon, computed hierarchically with
//     the closed-form peak-game solution, emitting a dynamic carbon
//     intensity signal (gCO2e per resource-second).
//   - Interference-aware attribution from historical colocation profiles
//     (alpha = slowdown suffered, beta = slowdown inflicted).
//   - Every substrate the paper's evaluation needs: architectural carbon
//     models (ACT-style components, Dell R740 platform overheads), a
//     15-workload suite with a Bubble-Up-style interference model, an
//     Azure-2017-like demand trace generator, a Prophet-style demand
//     forecaster, synthetic grid carbon-intensity signals, Monte Carlo
//     evaluation harnesses, and the workload carbon-optimization case
//     study (configuration sweeps, Pareto fronts, dynamic reconfiguration).
//
// The root package is a facade over the internal packages; it exposes the
// operations a datacenter operator or tenant would call. Experiment
// harnesses live in cmd/ and the per-figure benchmarks in bench_test.go.
package fairco2
