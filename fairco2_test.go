package fairco2

import (
	"math"
	"testing"

	"fairco2/internal/timeseries"
	"fairco2/internal/workload"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

func demoSchedule() *Schedule {
	return &Schedule{
		Slices:        3,
		SliceDuration: 3600,
		Workloads: []ScheduledWorkload{
			{ID: 0, Cores: 16, Start: 0, Duration: 2},
			{ID: 1, Cores: 48, Start: 1, Duration: 1},
			{ID: 2, Cores: 32, Start: 2, Duration: 1},
		},
	}
}

func TestReferenceServerAndSuite(t *testing.T) {
	srv := ReferenceServer()
	if srv.Cores != 48 {
		t.Errorf("reference server cores = %d", srv.Cores)
	}
	if len(WorkloadSuite()) != 15 {
		t.Error("suite should have 15 workloads")
	}
}

func TestAttributeScheduleAllMethods(t *testing.T) {
	s := demoSchedule()
	const budget = 1000.0
	for _, method := range []string{MethodGroundTruth, MethodRUP, MethodDemandProportional, MethodFairCO2} {
		attr, err := AttributeSchedule(method, s, GramsCO2e(budget))
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		sum := 0.0
		for _, v := range attr {
			sum += v
		}
		approx(t, sum, budget, 1e-6, method+" conserves budget")
	}
	if _, err := AttributeSchedule("nope", s, 1); err == nil {
		t.Error("unknown method should error")
	}
}

func TestEmbodiedIntensitySignal(t *testing.T) {
	demand := timeseries.New(0, 300, []float64{10, 20, 40, 20, 10, 10})
	sig, err := EmbodiedIntensitySignal(demand, 600, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := range sig.Values {
		total += sig.Values[i] * demand.Values[i] * 300
	}
	approx(t, total, 600, 1e-6, "signal conserves budget")
	// The peak sample carries the highest intensity.
	peakIdx := 2
	for i, v := range sig.Values {
		if i != peakIdx && v > sig.Values[peakIdx] {
			t.Errorf("sample %d intensity exceeds the peak's", i)
		}
	}
	// Splits that do not multiply to the length must error.
	if _, err := EmbodiedIntensitySignal(demand, 600, []int{4}); err == nil {
		t.Error("bad splits should error")
	}
	if _, err := EmbodiedIntensitySignal(nil, 600, nil); err == nil {
		t.Error("nil demand should error")
	}
}

func TestAttributeUsageFacade(t *testing.T) {
	demand := timeseries.New(0, 300, []float64{10, 30})
	sig, err := EmbodiedIntensitySignal(demand, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AttributeUsage(sig, demand)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 100, 1e-9, "full usage gets full budget")
}

func TestLiveIntensitySignal(t *testing.T) {
	// Two weeks of hourly history with a daily cycle.
	n := 14 * 24
	values := make([]float64, n)
	for i := range values {
		values[i] = 100 + 30*math.Sin(2*math.Pi*float64(i)/24)
	}
	history := timeseries.New(0, 3600, values)
	horizon := 2 * 24
	sig, err := LiveIntensitySignal(history, horizon, 1e5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Len() != n+horizon {
		t.Fatalf("signal covers %d samples, want %d", sig.Len(), n+horizon)
	}
	for i, v := range sig.Values {
		if v <= 0 {
			t.Fatalf("non-positive intensity at %d", i)
		}
	}
	if _, err := LiveIntensitySignal(nil, 1, 1, nil); err == nil {
		t.Error("nil history should error")
	}
	if _, err := LiveIntensitySignal(history, 0, 1, nil); err == nil {
		t.Error("zero horizon should error")
	}
	if _, err := LiveIntensitySignal(history, horizon, 1, []int{7}); err == nil {
		t.Error("bad splits should error")
	}
}

func TestAttributeColocationMethods(t *testing.T) {
	names := []workload.Name{workload.NBODY, workload.CH, workload.PG50, workload.LLAMA}
	var totals []float64
	for _, method := range []string{MethodGroundTruth, MethodRUP, MethodFairCO2} {
		attr, err := AttributeColocation(method, names, 250, 1)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(attr) != len(names) {
			t.Fatalf("%s: %d attributions", method, len(attr))
		}
		sum := 0.0
		for i, a := range attr {
			if a.Workload != names[i] {
				t.Errorf("%s: attribution %d for %s, want %s", method, i, a.Workload, names[i])
			}
			if a.Carbon <= 0 {
				t.Errorf("%s: non-positive carbon for %s", method, a.Workload)
			}
			sum += float64(a.Carbon)
		}
		totals = append(totals, sum)
	}
	// Every method attributes the same scenario total.
	approx(t, totals[1], totals[0], 1e-6*totals[0], "RUP total")
	approx(t, totals[2], totals[0], 1e-6*totals[0], "FairCO2 total")

	if _, err := AttributeColocation("nope", names, 250, 1); err == nil {
		t.Error("unknown method should error")
	}
	if _, err := AttributeColocation(MethodRUP, []workload.Name{"bogus", workload.CH}, 250, 1); err == nil {
		t.Error("unknown workload should error")
	}
	if _, err := AttributeColocation(MethodRUP, names, -5, 1); err == nil {
		t.Error("negative CI should error")
	}
}

func TestColocationGroundTruthLargeScenarioSampled(t *testing.T) {
	// More than 7 workloads exercises the sampled path.
	names := []workload.Name{
		workload.DDUP, workload.BFS, workload.MSF, workload.WC,
		workload.SA, workload.CH, workload.NN, workload.NBODY,
		workload.SPARK, workload.FAISS,
	}
	attr, err := AttributeColocation(MethodGroundTruth, names, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(attr) != 10 {
		t.Fatalf("got %d attributions", len(attr))
	}
}
