package fairco2

// Integration tests: end-to-end flows a library consumer would run,
// crossing package boundaries (cluster simulation -> telemetry -> billing;
// forecast -> live signal -> workload pricing).

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"fairco2/internal/cluster"
	"fairco2/internal/grid"
	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
)

func TestBillingFacadeEndToEnd(t *testing.T) {
	cfg := BillingConfig{
		Server:      ReferenceServer(),
		Grid:        GridCalifornia,
		PeriodStart: 0,
		Step:        3600,
		Samples:     24,
	}
	acct, err := NewAccountant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(vals map[int]float64) *timeseries.Series {
		s := timeseries.Zeros(0, 3600, 24)
		for i, v := range vals {
			s.Values[i] = v
		}
		return s
	}
	if err := acct.RecordUsage("web", mk(map[int]float64{8: 32, 9: 32, 10: 48, 11: 48}), mk(map[int]float64{8: 90, 9: 90, 10: 130, 11: 130})); err != nil {
		t.Fatal(err)
	}
	if err := acct.RecordUsage("batch", mk(map[int]float64{2: 64, 3: 64}), mk(map[int]float64{2: 180, 3: 180})); err != nil {
		t.Fatal(err)
	}
	statements, total, err := acct.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(statements) != 2 {
		t.Fatalf("got %d statements", len(statements))
	}
	sum := GramsCO2e(0)
	for _, s := range statements {
		sum += s.Total()
	}
	if math.Abs(float64(sum-total.Total())) > 1e-6*float64(total.Total()) {
		t.Errorf("statements %v != total %v", sum, total.Total())
	}
	out := FormatStatements(statements, total)
	if !strings.Contains(out, "web") || !strings.Contains(out, "TOTAL") {
		t.Errorf("formatted output:\n%s", out)
	}
}

func TestClusterToBillingPipeline(t *testing.T) {
	// Simulate a fleet, feed the per-VM telemetry into the Accountant,
	// and confirm the statements reassemble the period totals.
	rng := rand.New(rand.NewSource(21))
	fleetCfg := cluster.DefaultFleetConfig()
	fleetCfg.VMs = 40
	fleet, err := cluster.RandomFleet(fleetCfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Simulate(fleet, cluster.DefaultNodeSpec(), 300)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := NewAccountant(BillingConfig{
		Server:      ReferenceServer(),
		Grid:        GridSweden,
		PeriodStart: 0,
		Step:        300,
		Samples:     res.Demand.Len(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range fleet {
		usage, err := res.UsageOf(vm.ID)
		if err != nil {
			t.Fatal(err)
		}
		tenant := "tenant-" + string(rune('A'+vm.ID%5))
		if err := acct.RecordUsage(tenant, usage, nil); err != nil {
			t.Fatal(err)
		}
	}
	statements, total, err := acct.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(statements) != 5 {
		t.Fatalf("got %d tenants, want 5", len(statements))
	}
	if total.Embodied <= 0 || total.Static <= 0 {
		t.Errorf("fixed components must be positive: %+v", total)
	}
	if total.Dynamic != 0 {
		t.Error("no power telemetry recorded, dynamic must be zero")
	}
}

func TestLiveSignalGuidesShifting(t *testing.T) {
	// A deferrable job priced at the cheapest vs the most expensive hour
	// of the live signal must differ substantially — the premise of the
	// batchshift example and the paper's §5.3 optimization loop.
	cfg := trace.DefaultAzureLikeConfig()
	cfg.Days = 22
	full, err := trace.GenerateAzureLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perDay := 288
	history, err := full.Head(21 * perDay)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := LiveIntensitySignal(history, perDay, 1e7, nil)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := sig.Tail(perDay)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tail.Values[0], tail.Values[0]
	for _, v := range tail.Values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < 1.5*lo {
		t.Errorf("live signal should vary enough to guide shifting: lo %v hi %v", lo, hi)
	}
}

func TestRequestLedgerFacade(t *testing.T) {
	ledger, err := NewRequestLedger("IVF", 48, GridCalifornia)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, 50)
	for i := range reqs {
		reqs[i] = Request{ID: i, Arrival: Seconds(float64(i) * 0.01)}
	}
	attrs, total, err := ledger.PriceAll(reqs, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 50 || total <= 0 {
		t.Fatalf("attrs %d total %v", len(attrs), total)
	}
	if _, err := NewRequestLedger("ANN", 48, GridCalifornia); err == nil {
		t.Error("unknown algorithm should error")
	}
	batches, err := BatchRequests(reqs, 16, 1)
	if err != nil || len(batches) == 0 {
		t.Fatalf("BatchRequests: %v", err)
	}
}

func TestConstantAndTraceGrid(t *testing.T) {
	if ConstantGrid(42).At(123) != 42 {
		t.Error("ConstantGrid")
	}
	tr := TraceGrid(timeseries.New(0, 10, []float64{1, 2}))
	if tr.At(15) != 2 {
		t.Error("TraceGrid")
	}
	var _ GridSignal = grid.Sweden
}
