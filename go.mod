module fairco2

go 1.22
