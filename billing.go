package fairco2

import (
	"fairco2/internal/billing"
	"fairco2/internal/grid"
	"fairco2/internal/timeseries"
)

// Billing-period aliases: the operator-facing workflow (register tenants,
// record telemetry, close the period into carbon statements).
type (
	// Accountant accumulates tenant telemetry for one billing period.
	Accountant = billing.Accountant
	// BillingConfig parameterizes a billing period.
	BillingConfig = billing.Config
	// Statement is one tenant's carbon bill.
	Statement = billing.Statement
	// GridSignal provides grid carbon intensity over time.
	GridSignal = grid.Signal
)

// Grid signal constructors.
var (
	// GridSweden is a constant low-carbon grid (25 gCO2e/kWh).
	GridSweden GridSignal = grid.Sweden
	// GridCalifornia is the CAISO annual average (230 gCO2e/kWh).
	GridCalifornia GridSignal = grid.California
)

// ConstantGrid returns a fixed-intensity grid signal.
func ConstantGrid(ci CarbonIntensity) GridSignal { return grid.Constant(ci) }

// TraceGrid returns a grid signal backed by an intensity time series.
func TraceGrid(series *timeseries.Series) GridSignal { return grid.Trace{Series: series} }

// NewAccountant opens a billing period over the configured fleet.
func NewAccountant(cfg BillingConfig) (*Accountant, error) { return billing.NewAccountant(cfg) }

// FormatStatements renders statements as a table.
func FormatStatements(statements []Statement, total Statement) string {
	return billing.FormatStatements(statements, total)
}
