package fairco2

import (
	"math"
	"testing"

	"fairco2/internal/carbon"
	"fairco2/internal/units"
)

func TestBuildServerFacade(t *testing.T) {
	srv, err := BuildServer(ServerSpec{
		Sockets:         2,
		DieAreaCm2:      7,
		Node:            carbon.Node14nm,
		Fab:             carbon.FabUSA,
		CoresPerSocket:  24,
		MemoryGB:        192,
		MemoryTech:      carbon.DDR4,
		StorageGB:       480,
		CPUTDP:          165,
		StaticPower:     250,
		MaxDynamicPower: 330,
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Cores != 48 {
		t.Errorf("cores = %d", srv.Cores)
	}
	if _, err := BuildServer(ServerSpec{}); err == nil {
		t.Error("empty spec should error")
	}
}

func TestSCIFacadeVsFairCO2(t *testing.T) {
	// The point of the SCI export: a consumer can compute the baseline
	// bill and see that it is timing-blind while the Fair-CO2 bill is
	// not. Two identical reservations at different times get identical
	// SCI scores but different Temporal Shapley attributions.
	srv := ReferenceServer()
	rep, err := SCI(SCIInput{
		Energy:          units.KilowattHours(1).Joules(),
		Intensity:       300,
		Server:          srv,
		ReservedCores:   48,
		Reserved:        3600,
		FunctionalUnits: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SCI <= 0 || rep.OperationalCarbon != 300 {
		t.Errorf("SCI report %+v", rep)
	}

	sched := &Schedule{
		Slices:        2,
		SliceDuration: 3600,
		Workloads: []ScheduledWorkload{
			{ID: 0, Cores: 48, Start: 0, Duration: 1}, // peak hour (with 2)
			{ID: 1, Cores: 48, Start: 1, Duration: 1}, // off-peak hour
			{ID: 2, Cores: 48, Start: 0, Duration: 1},
		},
	}
	attr, err := AttributeSchedule(MethodFairCO2, sched, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if attr[0] <= attr[1] {
		t.Error("Fair-CO2 distinguishes peak from off-peak; SCI cannot")
	}
}

func TestSCIFacadeErrors(t *testing.T) {
	if _, err := SCI(SCIInput{}); err == nil {
		t.Error("empty input should error")
	}
}

func TestTable1Facade(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 || rows[0].Component != "DRAM" {
		t.Errorf("Table1 = %+v", rows)
	}
}

func TestEmissionsOfFacade(t *testing.T) {
	got := EmissionsOf(units.KilowattHours(2).Joules(), 100)
	if math.Abs(float64(got)-200) > 1e-9 {
		t.Errorf("EmissionsOf = %v, want 200", got)
	}
}
